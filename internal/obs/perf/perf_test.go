package perf

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"overcell/internal/obs"
)

// fakeEnv builds a collector over fully deterministic inputs: a
// fixed-step clock, a sampler that advances by a constant delta per
// reading, and a constant MemStats reader.
type fakeEnv struct {
	now   time.Time
	step  time.Duration
	s     Sample
	sStep Sample
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		now:  time.Unix(1700000000, 0),
		step: time.Millisecond,
		sStep: Sample{
			Allocs: 100, Bytes: 4096, GCCycles: 0,
			GCPauseNS: 0, SchedLatNS: 10, Goroutines: 3,
		},
	}
}

func (f *fakeEnv) clock() time.Time {
	f.now = f.now.Add(f.step)
	return f.now
}

func (f *fakeEnv) sampler() Sample {
	f.s = f.s.Add(f.sStep)
	return f.s
}

func (f *fakeEnv) mem() MemSnap {
	return MemSnap{TotalAllocBytes: 1 << 20, Mallocs: 500, HeapSysBytes: 1 << 22, NumGC: 2, PauseTotalNS: 300}
}

func (f *fakeEnv) collector(run string) *Collector {
	return New(Options{Run: run, Clock: f.clock, Sampler: f.sampler, Mem: f.mem})
}

// drive replays one synthetic run — two phases, then one speculation
// batch with a commit, a window-conflict re-route, and a budget
// discard — through both the tracer and observer interfaces.
func drive(c *Collector) {
	c.SetWorkers(2)
	c.Start()
	c.Emit(obs.Event{Type: obs.EvPhaseStart, Phase: "level-a"})
	c.Emit(obs.Event{Type: obs.EvPhaseEnd, Phase: "level-a", DurNS: 5e6})
	c.Emit(obs.Event{Type: obs.EvPhaseStart, Phase: "level-b"})

	c.BatchStart("level-b", 3, 2)
	c.BatchSpeculated()
	t0 := time.Unix(1700000000, 0)
	c.Spec(0, "n1", t0, t0.Add(time.Millisecond), 900, 12, 40, 2)
	c.Validated("n1", "", true, t0.Add(time.Millisecond))
	c.Committed("n1")
	c.Spec(1, "n2", t0, t0.Add(2*time.Millisecond), 900, 7, 30, 1)
	c.Validated("n2", "n1", false, t0.Add(2*time.Millisecond))
	c.Rerouted("n2", true)
	c.Spec(0, "n3", t0, t0.Add(time.Millisecond), 900, 3, 20, 1)
	c.Validated("n3", "", false, t0.Add(time.Millisecond))
	c.Rerouted("n3", false)
	c.BatchEnd(3, 1, 2)

	c.Emit(obs.Event{Type: obs.EvPhaseEnd, Phase: "level-b", DurNS: 9e6})
	c.Finish()
}

func TestReportDeterministicBytes(t *testing.T) {
	render := func() []byte {
		c := newFakeEnv().collector("det")
		drive(c)
		var b bytes.Buffer
		if err := c.Report().WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs rendered different report bytes:\n%s\n---\n%s", a, b)
	}
}

func TestReportContents(t *testing.T) {
	c := newFakeEnv().collector("contents")
	drive(c)
	r := c.Report()

	if !r.Complete || r.Run != "contents" || r.Workers != 2 {
		t.Fatalf("header = complete=%v run=%q workers=%d", r.Complete, r.Run, r.Workers)
	}
	if r.WallNS <= 0 {
		t.Errorf("WallNS = %d, want > 0 under the stepping clock", r.WallNS)
	}
	if r.Runtime.Allocs == 0 || r.Runtime.Bytes == 0 {
		t.Errorf("runtime delta empty: %+v", r.Runtime)
	}
	if len(r.Phases) != 2 || r.Phases[0].Name != "level-a" || r.Phases[1].Name != "level-b" {
		t.Fatalf("phases = %+v, want level-a then level-b in first-seen order", r.Phases)
	}
	if r.Phases[0].WallNS != 5e6 || r.Phases[1].WallNS != 9e6 {
		t.Errorf("phase wall = %d/%d, want the event DurNS values 5e6/9e6",
			r.Phases[0].WallNS, r.Phases[1].WallNS)
	}
	// Each closed phase spans exactly two sampler steps (start and end
	// readings bracket it), so its alloc delta is deterministic too.
	if r.Phases[0].Allocs == 0 {
		t.Errorf("phase alloc delta = 0, want > 0 under the stepping sampler")
	}

	pp := r.Parallel
	if pp == nil {
		t.Fatal("Parallel = nil after a driven batch")
	}
	if pp.Batches != 1 || pp.Speculated != 3 || pp.Committed != 1 ||
		pp.WindowConf != 1 || pp.OtherDiscards != 1 || pp.Reroutes != 2 {
		t.Errorf("pipeline counters = %+v", pp)
	}
	if pp.SpecNS != 4e6 {
		t.Errorf("SpecNS = %d, want 4e6 (1ms + 2ms + 1ms)", pp.SpecNS)
	}
	if pp.CloneCells != 2700 || pp.BufferedEvents != 22 ||
		pp.BudgetUsed != 90 || pp.BudgetCharges != 4 {
		t.Errorf("spec totals = cells %d events %d used %d charges %d",
			pp.CloneCells, pp.BufferedEvents, pp.BudgetUsed, pp.BudgetCharges)
	}
	if pp.DwellNS <= 0 || pp.ValidateNS <= 0 || pp.CommitNS <= 0 || pp.RerouteNS <= 0 {
		t.Errorf("committer times = dwell %d validate %d commit %d reroute %d, want all > 0",
			pp.DwellNS, pp.ValidateNS, pp.CommitNS, pp.RerouteNS)
	}
	if len(pp.Workers) != 2 || pp.Workers[0].Specs != 2 || pp.Workers[1].Specs != 1 {
		t.Fatalf("worker detail = %+v", pp.Workers)
	}
	if len(pp.ConflictPairs) != 1 || pp.ConflictPairs[0].Earlier != "n1" ||
		pp.ConflictPairs[0].Later != "n2" || pp.ConflictPairs[0].Count != 1 {
		t.Fatalf("conflict pairs = %+v", pp.ConflictPairs)
	}
	if pp.ConflictPairs[0].RerouteNS <= 0 {
		t.Errorf("conflict pair reroute = %d, want > 0", pp.ConflictPairs[0].RerouteNS)
	}
}

func TestReportMidRunSnapshot(t *testing.T) {
	c := newFakeEnv().collector("live")
	c.Start()
	c.Emit(obs.Event{Type: obs.EvPhaseStart, Phase: "level-a"})
	r := c.Report()
	if r.Complete {
		t.Error("mid-run report claims Complete")
	}
	if r.WallNS <= 0 {
		t.Errorf("mid-run WallNS = %d, want a live elapsed reading", r.WallNS)
	}
	// The snapshot must not close the run: Finish still works.
	c.Emit(obs.Event{Type: obs.EvPhaseEnd, Phase: "level-a", DurNS: 1e6})
	c.Finish()
	if r2 := c.Report(); !r2.Complete || len(r2.Phases) != 1 {
		t.Errorf("post-finish report = complete=%v phases=%d", r2.Complete, len(r2.Phases))
	}
}

func TestConstantInputsCollapseDurations(t *testing.T) {
	at := time.Unix(42, 0)
	c := New(Options{
		Run:     "flat",
		Clock:   func() time.Time { return at },
		Sampler: func() Sample { return Sample{} },
		Mem:     func() MemSnap { return MemSnap{} },
	})
	drive(c)
	r := c.Report()
	if r.WallNS != 0 || r.Runtime.Allocs != 0 {
		t.Errorf("constant inputs: wall %d allocs %d, want 0/0", r.WallNS, r.Runtime.Allocs)
	}
	// Phase wall survives: it comes from the events, not the clock.
	if r.Phases[0].WallNS != 5e6 {
		t.Errorf("phase wall = %d, want the event-carried 5e6", r.Phases[0].WallNS)
	}
	if pp := r.Parallel; pp.DwellNS != 0 || pp.ValidateNS != 0 || pp.CommitNS != 0 {
		t.Errorf("constant clock left committer times: %+v", pp)
	}
}

func TestQuick(t *testing.T) {
	c := newFakeEnv().collector("quick")
	drive(c)
	w, spec, conf := c.Quick()
	if w != 2 || spec != 3 || conf != 2 {
		t.Errorf("Quick = (%d, %d, %d), want (2, 3, 2)", w, spec, conf)
	}
}

func TestBenchPhases(t *testing.T) {
	c := newFakeEnv().collector("bench")
	drive(c)
	rows := c.Report().BenchPhases()
	want := []string{"run", "level-a", "level-b", "parallel/speculate", "parallel/commit"}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d: %+v", len(rows), len(want), rows)
	}
	for i, name := range want {
		if rows[i].Name != name {
			t.Errorf("row %d = %q, want %q", i, rows[i].Name, name)
		}
	}
	if rows[0].NsPerOp <= 0 || rows[3].AllocsPerOp == 0 {
		t.Errorf("rows carry no data: run ns %d, speculate allocs %d",
			rows[0].NsPerOp, rows[3].AllocsPerOp)
	}
}

func TestTable(t *testing.T) {
	c := newFakeEnv().collector("table")
	drive(c)
	tab := c.Report().Table()
	for _, want := range []string{
		"run=table workers=2 (complete)",
		"level-a", "level-b",
		"1 batches, 3 speculated, 1 committed, 1 window conflicts, 1 other discards",
		"worker w0", "worker w1",
		"conflict n1 -> n2 x1",
	} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	c := newFakeEnv().collector("round")
	drive(c)
	var b bytes.Buffer
	if err := c.Report().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Schema != ReportSchema || back.Parallel == nil {
		t.Errorf("round-tripped report = schema %d parallel %v", back.Schema, back.Parallel)
	}
}

func TestRuntimeSamplerSmoke(t *testing.T) {
	smp := RuntimeSampler()
	before := smp()
	// Allocate visibly between readings.
	waste := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		waste = append(waste, make([]byte, 1024))
	}
	_ = waste
	after := smp()
	d := after.Sub(before)
	if after.Allocs < before.Allocs {
		t.Errorf("alloc counter went backwards: %d -> %d", before.Allocs, after.Allocs)
	}
	if d.Bytes == 0 {
		t.Errorf("no bytes attributed across a 64KiB allocation burst")
	}
	if after.Goroutines <= 0 {
		t.Errorf("goroutine count = %d, want > 0", after.Goroutines)
	}
	if ReadMem().Mallocs == 0 {
		t.Error("ReadMem returned zero Mallocs")
	}
}

func TestSampleSubAdd(t *testing.T) {
	a := Sample{Allocs: 10, Bytes: 100, GCCycles: 1, GCPauseNS: 5, SchedLatNS: 7, Goroutines: 4}
	b := Sample{Allocs: 25, Bytes: 160, GCCycles: 2, GCPauseNS: 9, SchedLatNS: 8, Goroutines: 6}
	d := b.Sub(a)
	if d.Allocs != 15 || d.Bytes != 60 || d.GCCycles != 1 || d.GCPauseNS != 4 || d.SchedLatNS != 1 {
		t.Errorf("Sub = %+v", d)
	}
	if d.Goroutines != 6 {
		t.Errorf("Sub carried Goroutines %d, want the instantaneous 6", d.Goroutines)
	}
	sum := a.Add(d)
	if sum.Allocs != 25 || sum.Goroutines != 6 {
		t.Errorf("Add = %+v, want accumulated counters and max goroutines", sum)
	}
}
