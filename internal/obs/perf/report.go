package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"overcell/internal/obs"
)

// ReportSchema versions the perf-report JSON document.
const ReportSchema = 1

// Report is one run's performance attribution, rendered from a
// Collector. Field order and slice orderings are fixed (phases in
// first-seen order, workers by index, conflict pairs by count then
// name), so identical inputs marshal to identical bytes.
type Report struct {
	Schema  int    `json:"schema"`
	Run     string `json:"run,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Complete is false for a mid-run snapshot (Finish not yet called).
	Complete bool  `json:"complete"`
	WallNS   int64 `json:"wall_ns"`
	// Runtime is the whole-run runtime/metrics delta; Mem the
	// whole-run MemStats delta (HeapSysBytes is the end-of-run level,
	// not a delta).
	Runtime        RuntimeDelta    `json:"runtime"`
	Mem            MemDelta        `json:"mem"`
	GoroutinesPeak int64           `json:"goroutines_peak"`
	Phases         []PhaseReport   `json:"phases,omitempty"`
	Parallel       *ParallelReport `json:"parallel,omitempty"`
}

// RuntimeDelta is a Sample delta in report form.
type RuntimeDelta struct {
	Allocs     uint64 `json:"allocs"`
	Bytes      uint64 `json:"bytes"`
	GCCycles   uint64 `json:"gc_cycles"`
	GCPauseNS  int64  `json:"gc_pause_ns"`
	SchedLatNS int64  `json:"sched_lat_ns"`
}

// MemDelta is the run-level MemStats delta.
type MemDelta struct {
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	Mallocs         uint64 `json:"mallocs"`
	NumGC           uint32 `json:"num_gc"`
	PauseTotalNS    uint64 `json:"pause_total_ns"`
	HeapSysBytes    uint64 `json:"heap_sys_bytes"`
}

// PhaseReport is one flow phase's attribution: wall time from the
// phase events themselves (flow-clock, worker-count independent),
// allocation deltas from the collector's sampler.
type PhaseReport struct {
	Name      string `json:"name"`
	Count     int    `json:"count"`
	WallNS    int64  `json:"wall_ns"`
	Allocs    uint64 `json:"allocs"`
	Bytes     uint64 `json:"bytes"`
	GCCycles  uint64 `json:"gc_cycles"`
	GCPauseNS int64  `json:"gc_pause_ns"`
}

// ParallelReport is the speculate/validate/commit pipeline's
// attribution. SpecAllocs/SpecBytes cover the speculation windows
// (snapshot clones, forked budgets, buffered tracers, the routing work
// itself); CommitAllocs/CommitBytes cover the serial validate, commit
// replay and conflict re-routes.
type ParallelReport struct {
	Batches       int   `json:"batches"`
	Speculated    int64 `json:"speculated"`
	Committed     int64 `json:"committed"`
	WindowConf    int64 `json:"window_conflicts"`
	OtherDiscards int64 `json:"other_discards"`
	Reroutes      int64 `json:"reroutes"`

	SpecAllocs   uint64 `json:"spec_allocs"`
	SpecBytes    uint64 `json:"spec_bytes"`
	CommitAllocs uint64 `json:"commit_allocs"`
	CommitBytes  uint64 `json:"commit_bytes"`

	// SpecNS sums per-worker speculation routing time; DwellNS is the
	// total commit-queue dwell (speculation finished to committer
	// reached it); Validate/Commit/RerouteNS split the committer's own
	// time.
	SpecNS     int64 `json:"spec_ns"`
	DwellNS    int64 `json:"commit_queue_dwell_ns"`
	ValidateNS int64 `json:"validate_ns"`
	CommitNS   int64 `json:"commit_ns"`
	RerouteNS  int64 `json:"reroute_ns"`

	// CloneCells sums what the workers' snapshots really did: per-track
	// interval-set copies under the copy-on-write protocol (before COW
	// snapshots it counted full clone sizes in grid cells; the JSON key
	// is kept stable for downstream report readers).
	CloneCells     int64 `json:"clone_cells"`
	BufferedEvents int64 `json:"buffered_events"`
	BudgetUsed     int64 `json:"budget_used"`
	BudgetCharges  int64 `json:"budget_charges"`

	Workers       []WorkerReport `json:"worker_detail,omitempty"`
	ConflictPairs []ConflictPair `json:"conflict_pairs,omitempty"`
}

// WorkerReport is one speculative worker slot's totals, including the
// budget charge counters its forks accumulated.
type WorkerReport struct {
	Worker         int   `json:"worker"`
	Specs          int64 `json:"specs"`
	SpecNS         int64 `json:"spec_ns"`
	CloneCells     int64 `json:"clone_cells"`
	BufferedEvents int64 `json:"buffered_events"`
	BudgetUsed     int64 `json:"budget_used"`
	BudgetCharges  int64 `json:"budget_charges"`
}

// ConflictPair records one ordered net pair whose dilated read windows
// collided: Earlier committed first, invalidating Later's speculation,
// which then re-routed serially for RerouteNS.
type ConflictPair struct {
	Earlier   string `json:"earlier"`
	Later     string `json:"later"`
	Count     int64  `json:"count"`
	RerouteNS int64  `json:"reroute_ns"`
}

// Report snapshots the collector into a Report. Safe to call at any
// time, including mid-run from another goroutine; Complete reports
// whether Finish had been called.
func (c *Collector) Report() *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	endT, endS, endM := c.endT, c.endS, c.endM
	if !c.finished {
		endT = c.clock()
		endS = c.sampler()
		endM = c.mem()
	}
	r := &Report{
		Schema:         ReportSchema,
		Run:            c.runID,
		Workers:        c.workers,
		Complete:       c.finished,
		GoroutinesPeak: c.goroPeak,
	}
	if c.started {
		r.WallNS = endT.Sub(c.startT).Nanoseconds()
		d := endS.Sub(c.startS)
		r.Runtime = RuntimeDelta{
			Allocs: d.Allocs, Bytes: d.Bytes, GCCycles: d.GCCycles,
			GCPauseNS: d.GCPauseNS, SchedLatNS: d.SchedLatNS,
		}
		r.Mem = MemDelta{
			TotalAllocBytes: endM.TotalAllocBytes - c.startM.TotalAllocBytes,
			Mallocs:         endM.Mallocs - c.startM.Mallocs,
			NumGC:           endM.NumGC - c.startM.NumGC,
			PauseTotalNS:    endM.PauseTotalNS - c.startM.PauseTotalNS,
			HeapSysBytes:    endM.HeapSysBytes,
		}
		if g := endS.Goroutines; g > r.GoroutinesPeak {
			r.GoroutinesPeak = g
		}
	}
	for _, name := range c.phaseOrder {
		p := c.phases[name]
		r.Phases = append(r.Phases, PhaseReport{
			Name: p.name, Count: p.count, WallNS: p.wallNS,
			Allocs: p.d.Allocs, Bytes: p.d.Bytes,
			GCCycles: p.d.GCCycles, GCPauseNS: p.d.GCPauseNS,
		})
	}
	if c.batches > 0 {
		pp := &ParallelReport{
			Batches:       c.batches,
			Speculated:    c.speculated,
			Committed:     c.committedN,
			WindowConf:    c.windowConf,
			OtherDiscards: c.otherDiscards,
			Reroutes:      c.reroutes,
			SpecAllocs:    c.specDelta.Allocs,
			SpecBytes:     c.specDelta.Bytes,
			CommitAllocs:  c.commitDelta.Allocs,
			CommitBytes:   c.commitDelta.Bytes,
			DwellNS:       c.dwellNS,
			ValidateNS:    c.validateNS,
			CommitNS:      c.commitNS,
			RerouteNS:     c.rerouteNS,
		}
		for i := range c.workerAggs {
			w := &c.workerAggs[i]
			if w.specs == 0 {
				continue
			}
			pp.SpecNS += w.specNS
			pp.CloneCells += w.cloneCells
			pp.BufferedEvents += w.events
			pp.BudgetUsed += w.budgetUsed
			pp.BudgetCharges += w.budgetCharges
			pp.Workers = append(pp.Workers, WorkerReport{
				Worker: i, Specs: w.specs, SpecNS: w.specNS,
				CloneCells: w.cloneCells, BufferedEvents: w.events,
				BudgetUsed: w.budgetUsed, BudgetCharges: w.budgetCharges,
			})
		}
		keys := make([]pairKey, 0, len(c.pairs))
		for k := range c.pairs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := c.pairs[keys[i]], c.pairs[keys[j]]
			if a.count != b.count {
				return a.count > b.count
			}
			if keys[i].earlier != keys[j].earlier {
				return keys[i].earlier < keys[j].earlier
			}
			return keys[i].later < keys[j].later
		})
		for _, k := range keys {
			pa := c.pairs[k]
			pp.ConflictPairs = append(pp.ConflictPairs, ConflictPair{
				Earlier: k.earlier, Later: k.later,
				Count: pa.count, RerouteNS: pa.rerouteNS,
			})
		}
		r.Parallel = pp
	}
	return r
}

// WriteJSON writes the report as indented JSON with a trailing
// newline. The encoding is deterministic: struct field order plus the
// fixed slice orderings documented on Report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// BenchPhases flattens the report into bench-JSON per-phase rows: one
// "run" total, one row per flow phase, and the parallel pipeline's
// speculation and commit windows as pseudo-phases. This is the data
// behind the levelb seq-vs-par allocation attribution in
// EXPERIMENTS.md.
func (r *Report) BenchPhases() []obs.BenchPhase {
	out := make([]obs.BenchPhase, 0, len(r.Phases)+3)
	out = append(out, obs.BenchPhase{
		Name: "run", NsPerOp: r.WallNS,
		AllocsPerOp: r.Runtime.Allocs, BytesPerOp: r.Runtime.Bytes,
	})
	for _, p := range r.Phases {
		out = append(out, obs.BenchPhase{
			Name: p.Name, NsPerOp: p.WallNS,
			AllocsPerOp: p.Allocs, BytesPerOp: p.Bytes,
		})
	}
	if pp := r.Parallel; pp != nil {
		out = append(out,
			obs.BenchPhase{
				Name: "parallel/speculate", NsPerOp: pp.SpecNS,
				AllocsPerOp: pp.SpecAllocs, BytesPerOp: pp.SpecBytes,
			},
			obs.BenchPhase{
				Name: "parallel/commit", NsPerOp: pp.ValidateNS + pp.CommitNS + pp.RerouteNS,
				AllocsPerOp: pp.CommitAllocs, BytesPerOp: pp.CommitBytes,
			})
	}
	return out
}

// Table renders the report as a human-readable text table (cold path;
// allocation-free rendering is a non-goal here).
func (r *Report) Table() string {
	var b strings.Builder
	state := "complete"
	if !r.Complete {
		state = "in progress"
	}
	fmt.Fprintf(&b, "perf report: run=%s workers=%d (%s)\n", orDash(r.Run), r.Workers, state)
	fmt.Fprintf(&b, "  wall %s  allocs %d (%s)  gc %d cycles / %s pause  sched-lat %s  goroutines<=%d\n",
		ns(r.WallNS), r.Runtime.Allocs, bytesH(r.Runtime.Bytes),
		r.Runtime.GCCycles, ns(r.Runtime.GCPauseNS), ns(r.Runtime.SchedLatNS), r.GoroutinesPeak)
	if len(r.Phases) > 0 {
		fmt.Fprintf(&b, "  %-12s %10s %12s %14s %6s\n", "phase", "wall", "allocs", "bytes", "gc")
		for _, p := range r.Phases {
			fmt.Fprintf(&b, "  %-12s %10s %12d %14s %6d\n",
				p.Name, ns(p.WallNS), p.Allocs, bytesH(p.Bytes), p.GCCycles)
		}
	}
	if pp := r.Parallel; pp != nil {
		fmt.Fprintf(&b, "  parallel: %d batches, %d speculated, %d committed, %d window conflicts, %d other discards\n",
			pp.Batches, pp.Speculated, pp.Committed, pp.WindowConf, pp.OtherDiscards)
		fmt.Fprintf(&b, "    speculation  %10s  %12d allocs  %14s  (%d COW track copies, %d events buffered)\n",
			ns(pp.SpecNS), pp.SpecAllocs, bytesH(pp.SpecBytes), pp.CloneCells, pp.BufferedEvents)
		fmt.Fprintf(&b, "    commit loop  validate %s  commit %s  reroute %s  queue-dwell %s\n",
			ns(pp.ValidateNS), ns(pp.CommitNS), ns(pp.RerouteNS), ns(pp.DwellNS))
		fmt.Fprintf(&b, "    budget: %d expansions over %d charge batches via worker forks\n",
			pp.BudgetUsed, pp.BudgetCharges)
		for _, w := range pp.Workers {
			fmt.Fprintf(&b, "    worker w%-3d %5d specs %10s  %10d copies  %8d events  %10d expansions / %d charges\n",
				w.Worker, w.Specs, ns(w.SpecNS), w.CloneCells, w.BufferedEvents, w.BudgetUsed, w.BudgetCharges)
		}
		for i, cp := range pp.ConflictPairs {
			if i == 8 {
				fmt.Fprintf(&b, "    ... %d more conflict pairs (full list in the JSON report)\n", len(pp.ConflictPairs)-i)
				break
			}
			fmt.Fprintf(&b, "    conflict %s -> %s x%d (reroute %s)\n",
				cp.Earlier, cp.Later, cp.Count, ns(cp.RerouteNS))
		}
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func ns(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(v)/1e3)
	}
	return fmt.Sprintf("%dns", v)
}

func bytesH(v uint64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
	}
	return fmt.Sprintf("%dB", v)
}
