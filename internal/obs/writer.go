package obs

import (
	"encoding/json"
	"io"
)

// Writer streams events as NDJSON: one JSON object per line, fields in
// Event declaration order, zero fields omitted. The stream is
// deterministic whenever the routing run is; only the dur_ns field of
// phase_end events carries wall-clock time.
//
// Writer buffers nothing itself — wrap the destination in a
// bufio.Writer for throughput — and latches the first encoding or I/O
// error, exposed by Err, so emit sites stay error-free.
type Writer struct {
	w   io.Writer
	n   int
	err error
}

// NewWriter returns a Writer streaming to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Enabled implements Tracer.
func (w *Writer) Enabled() bool { return true }

// Emit implements Tracer. After the first error, subsequent emits are
// dropped.
func (w *Writer) Emit(e Event) {
	if w.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		w.err = err
		return
	}
	data = append(data, '\n')
	if _, err := w.w.Write(data); err != nil {
		w.err = err
		return
	}
	w.n++
}

// Events returns how many events were successfully written.
func (w *Writer) Events() int { return w.n }

// Err returns the first encoding or I/O error, if any.
func (w *Writer) Err() error { return w.err }
