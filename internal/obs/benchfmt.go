package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// BenchEntry is one benchmark workload's measurement in a bench-JSON
// file (see cmd/benchjson). Metrics carries workload-specific numbers
// (percent reductions, nodes expanded, event counts) keyed by a stable
// snake_case name.
type BenchEntry struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     int64              `json:"ns_per_op"`
	BytesPerOp  uint64             `json:"bytes_per_op"`
	AllocsPerOp uint64             `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// BenchFile is the machine-readable perf-trajectory snapshot committed
// as BENCH_<tag>.json: one entry per workload, tagged with the PR it
// baselines. Future PRs append new files and compare against old ones.
type BenchFile struct {
	Tag         string       `json:"tag"`
	GoVersion   string       `json:"go_version"`
	GeneratedAt string       `json:"generated_at,omitempty"`
	Benchmarks  []BenchEntry `json:"benchmarks"`
}

// WriteBench encodes the file as indented JSON with a trailing
// newline.
func WriteBench(w io.Writer, f *BenchFile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadBench decodes and validates a bench-JSON file.
func ReadBench(r io.Reader) (*BenchFile, error) {
	var f BenchFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: bench json: %w", err)
	}
	if f.Tag == "" {
		return nil, fmt.Errorf("obs: bench json missing tag")
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("obs: bench json %q has no benchmarks", f.Tag)
	}
	for i, b := range f.Benchmarks {
		if b.Name == "" {
			return nil, fmt.Errorf("obs: bench json %q entry %d missing name", f.Tag, i)
		}
		if b.Runs <= 0 || b.NsPerOp < 0 {
			return nil, fmt.Errorf("obs: bench json %q entry %q has invalid runs/timing (%d, %d)",
				f.Tag, b.Name, b.Runs, b.NsPerOp)
		}
	}
	return &f, nil
}
