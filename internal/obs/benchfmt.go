package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// BenchEntry is one benchmark workload's measurement in a bench-JSON
// file (see cmd/benchjson). Metrics carries workload-specific numbers
// (percent reductions, nodes expanded, event counts) keyed by a stable
// snake_case name.
type BenchEntry struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     int64              `json:"ns_per_op"`
	BytesPerOp  uint64             `json:"bytes_per_op"`
	AllocsPerOp uint64             `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// Phases breaks the workload's cost down by flow phase (plus the
	// parallel pipeline's speculate/commit pseudo-phases), as reported
	// by the perf attribution layer. Schema 3+.
	Phases []BenchPhase `json:"phases,omitempty"`
}

// BenchPhase is one phase row of a perf-attributed bench entry: where
// inside the workload the time and allocations went.
type BenchPhase struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

// BenchSchemaVersion is the current bench-JSON schema. Files written
// before versioning carry no "schema" field and validate as legacy;
// files at version 2 or later must also carry host metadata so
// cross-machine comparisons can be detected (see cmd/benchdiff), and
// files at version 3 may attach per-phase attribution rows to entries.
const BenchSchemaVersion = 3

// BenchHost records the machine a snapshot was measured on. Timing
// deltas between snapshots from different hosts are noise, not
// regressions; benchdiff refuses to gate on them unless overridden.
type BenchHost struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// Same reports whether two host records describe comparable machines.
func (h BenchHost) Same(o BenchHost) bool { return h == o }

// String renders the host as "linux/amd64 cpu=8 maxprocs=8".
func (h BenchHost) String() string {
	return fmt.Sprintf("%s/%s cpu=%d maxprocs=%d", h.GOOS, h.GOARCH, h.NumCPU, h.GOMAXPROCS)
}

// BenchFile is the machine-readable perf-trajectory snapshot committed
// as BENCH_<tag>.json: one entry per workload, tagged with the PR it
// baselines. Future PRs append new files and compare against old ones.
type BenchFile struct {
	Schema      int          `json:"schema,omitempty"` // 0 = legacy (pre-versioning)
	Tag         string       `json:"tag"`
	GoVersion   string       `json:"go_version"`
	GeneratedAt string       `json:"generated_at,omitempty"`
	Host        *BenchHost   `json:"host,omitempty"` // required from schema 2 on
	Benchmarks  []BenchEntry `json:"benchmarks"`
}

// WriteBench encodes the file as indented JSON with a trailing
// newline.
func WriteBench(w io.Writer, f *BenchFile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadBench decodes and validates a bench-JSON file.
func ReadBench(r io.Reader) (*BenchFile, error) {
	var f BenchFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: bench json: %w", err)
	}
	if f.Tag == "" {
		return nil, fmt.Errorf("obs: bench json missing tag")
	}
	if f.Schema > BenchSchemaVersion {
		return nil, fmt.Errorf("obs: bench json %q has schema %d, newer than supported %d",
			f.Tag, f.Schema, BenchSchemaVersion)
	}
	if f.Schema >= 2 && f.Host == nil {
		return nil, fmt.Errorf("obs: bench json %q (schema %d) missing host metadata", f.Tag, f.Schema)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("obs: bench json %q has no benchmarks", f.Tag)
	}
	for i, b := range f.Benchmarks {
		if b.Name == "" {
			return nil, fmt.Errorf("obs: bench json %q entry %d missing name", f.Tag, i)
		}
		if b.Runs <= 0 || b.NsPerOp < 0 {
			return nil, fmt.Errorf("obs: bench json %q entry %q has invalid runs/timing (%d, %d)",
				f.Tag, b.Name, b.Runs, b.NsPerOp)
		}
		if len(b.Phases) > 0 && f.Schema < 3 {
			return nil, fmt.Errorf("obs: bench json %q entry %q carries phases but schema %d predates them",
				f.Tag, b.Name, f.Schema)
		}
		for j, p := range b.Phases {
			if p.Name == "" {
				return nil, fmt.Errorf("obs: bench json %q entry %q phase %d missing name", f.Tag, b.Name, j)
			}
		}
	}
	return &f, nil
}
