module overcell

go 1.22
