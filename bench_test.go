// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the complexity-claim sweeps and the design-choice
// ablations called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The custom metrics reported alongside ns/op carry the experimental
// results themselves (percent reductions, search expansions), so a
// bench run doubles as a reproduction run.
package overcell

import (
	"fmt"
	"math/rand"
	"testing"

	"overcell/internal/channel"
	"overcell/internal/core"
	"overcell/internal/flow"
	"overcell/internal/gen"
	"overcell/internal/geom"
	"overcell/internal/grid"
	"overcell/internal/maze"
	"overcell/internal/metrics"
	"overcell/internal/netlist"
	"overcell/internal/paper"
	"overcell/internal/render"
	"overcell/internal/steiner"
	"overcell/internal/tig"
)

var instances = []struct {
	name string
	mk   func() (*gen.Instance, error)
}{
	{"ami33", gen.Ami33Like},
	{"xerox", gen.XeroxLike},
	{"ex3", gen.Ex3Like},
}

// BenchmarkTable1Instances regenerates the three instances of Table 1.
func BenchmarkTable1Instances(b *testing.B) {
	for _, m := range instances {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inst, err := m.mk()
				if err != nil {
					b.Fatal(err)
				}
				if len(inst.Nets) == 0 {
					b.Fatal("empty instance")
				}
			}
		})
	}
}

func runFlow(b *testing.B, mk func() (*gen.Instance, error),
	f func(*gen.Instance, flow.Options) (*flow.Result, error)) *flow.Result {
	b.Helper()
	inst, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	res, err := f(inst, flow.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable2FlowComparison reproduces Table 2: the proposed
// over-cell flow against the two-layer channel baseline. The percent
// reductions are reported as benchmark metrics.
func BenchmarkTable2FlowComparison(b *testing.B) {
	for _, m := range instances {
		b.Run(m.name, func(b *testing.B) {
			var c metrics.Comparison
			for i := 0; i < b.N; i++ {
				c = metrics.Comparison{
					Instance: m.name,
					Base:     runFlow(b, m.mk, flow.TwoLayerBaseline),
					New:      runFlow(b, m.mk, flow.Proposed),
				}
			}
			b.ReportMetric(c.AreaReduction(), "%area-red")
			b.ReportMetric(c.WireReduction(), "%wire-red")
			b.ReportMetric(c.ViaReduction(), "%via-red")
		})
	}
}

// BenchmarkTable3FourLayerChannel reproduces Table 3: the over-cell
// flow against the optimistic (50% tracks) four-layer channel model.
func BenchmarkTable3FourLayerChannel(b *testing.B) {
	for _, m := range instances {
		b.Run(m.name, func(b *testing.B) {
			var c metrics.Comparison
			for i := 0; i < b.N; i++ {
				c = metrics.Comparison{
					Instance: m.name,
					Base:     runFlow(b, m.mk, flow.FourLayerChannel),
					New:      runFlow(b, m.mk, flow.Proposed),
				}
			}
			b.ReportMetric(c.AreaReduction(), "%area-red")
		})
	}
}

// BenchmarkChannelFreeFlow reproduces the section 5 variant: all nets
// at level B, channels eliminated.
func BenchmarkChannelFreeFlow(b *testing.B) {
	for _, m := range instances {
		b.Run(m.name, func(b *testing.B) {
			var c metrics.Comparison
			for i := 0; i < b.N; i++ {
				c = metrics.Comparison{
					Base: runFlow(b, m.mk, flow.Proposed),
					New:  runFlow(b, m.mk, flow.ChannelFree),
				}
			}
			b.ReportMetric(c.AreaReduction(), "%area-red")
		})
	}
}

// BenchmarkFigure1TIG builds the Figure 1 instance and its Track
// Intersection Graph.
func BenchmarkFigure1TIG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _, _, err := paper.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		tg := tig.BuildGraph(g, geom.Iv(0, 5), geom.Iv(0, 3))
		if len(tg.Edges) == 0 {
			b.Fatal("empty TIG")
		}
	}
}

// BenchmarkFigure2PathSelection runs the Figure 2 walkthrough: the two
// MBFS searches and the corner-count selection.
func BenchmarkFigure2PathSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rv, rh, ok := paper.Figure2Search()
		if !ok || len(rv.Paths) != 1 || len(rh.Paths) != 2 {
			b.Fatal("walkthrough diverged from the paper")
		}
	}
}

// BenchmarkFigure3Ami33Render runs the proposed flow on ami33 and
// renders the level B routing.
func BenchmarkFigure3Ami33Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst, res, err := paper.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		art := render.GridASCII(res.BGrid, res.LevelB, 4)
		if len(art) == 0 || inst == nil {
			b.Fatal("empty figure")
		}
	}
}

// scalingNetlist builds n random two-terminal nets on an s-by-s grid.
func scalingNetlist(s, n int, seed int64) (*grid.Grid, *netlist.Netlist) {
	g, err := grid.Uniform(s, s, 10)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	nl := netlist.New()
	used := map[geom.Point]bool{}
	pick := func() geom.Point {
		for {
			p := geom.Pt(rng.Intn(s)*10, rng.Intn(s)*10)
			if !used[p] {
				used[p] = true
				return p
			}
		}
	}
	for i := 0; i < n; i++ {
		nl.AddPoints(fmt.Sprintf("n%d", i), netlist.Signal, pick(), pick())
	}
	return g, nl
}

// BenchmarkLevelBScalingGrid checks the O(n·h·v) time claim along the
// grid-size axis: fixed net count, growing surface.
func BenchmarkLevelBScalingGrid(b *testing.B) {
	for _, s := range []int{48, 96, 192} {
		b.Run(fmt.Sprintf("grid%dx%d", s, s), func(b *testing.B) {
			expanded := 0
			for i := 0; i < b.N; i++ {
				g, nl := scalingNetlist(s, 40, 11)
				res, err := core.New(g, core.DefaultConfig()).Route(nl.Nets())
				if err != nil {
					b.Fatal(err)
				}
				expanded = res.Expanded
			}
			b.ReportMetric(float64(expanded), "nodes-expanded")
		})
	}
}

// BenchmarkLevelBScalingNets checks the claim along the net-count axis.
func BenchmarkLevelBScalingNets(b *testing.B) {
	for _, n := range []int{25, 50, 100} {
		b.Run(fmt.Sprintf("nets%d", n), func(b *testing.B) {
			expanded := 0
			for i := 0; i < b.N; i++ {
				g, nl := scalingNetlist(96, n, 13)
				res, err := core.New(g, core.DefaultConfig()).Route(nl.Nets())
				if err != nil {
					b.Fatal(err)
				}
				expanded = res.Expanded
			}
			b.ReportMetric(float64(expanded), "nodes-expanded")
		})
	}
}

// BenchmarkLevelBParallel measures the speculate/validate/commit first
// pass against the serial router on the largest scaling workload. The
// routed result is identical at every worker count (the determinism
// invariant, see DESIGN.md section 13); only the wall clock may differ.
// On a single-CPU host the parallel path is pure overhead — snapshot
// clones with no concurrent speculation to pay for them — so compare
// worker counts only on hosts where GOMAXPROCS allows real overlap.
func BenchmarkLevelBParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			expanded := 0
			for i := 0; i < b.N; i++ {
				g, nl := scalingNetlist(96, 100, 13)
				cfg := core.DefaultConfig()
				cfg.Workers = w
				res, err := core.New(g, cfg).Route(nl.Nets())
				if err != nil {
					b.Fatal(err)
				}
				expanded = res.Expanded
			}
			b.ReportMetric(float64(expanded), "nodes-expanded")
		})
	}
}

// BenchmarkMazeVsTIG reproduces the section 3 claim that the TIG
// search completes connections faster on average than a maze router:
// identical two-terminal connections on an obstacle field, solved by
// both. The nodes-expanded metric is the machine-independent
// comparison.
func BenchmarkMazeVsTIG(b *testing.B) {
	setup := func() (*grid.Grid, [][2]tig.Point) {
		g, err := grid.Uniform(96, 96, 10)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(21))
		for k := 0; k < 12; k++ {
			x, y := rng.Intn(80)+5, rng.Intn(80)+5
			g.BlockRect(geom.R(x*10, y*10, (x+rng.Intn(8))*10, (y+rng.Intn(8))*10), grid.MaskBoth)
		}
		var conns [][2]tig.Point
		for len(conns) < 60 {
			a := tig.Point{Col: rng.Intn(96), Row: rng.Intn(96)}
			c := tig.Point{Col: rng.Intn(96), Row: rng.Intn(96)}
			if a == c || !g.PointFree(a.Col, a.Row) || !g.PointFree(c.Col, c.Row) {
				continue
			}
			conns = append(conns, [2]tig.Point{a, c})
		}
		return g, conns
	}
	b.Run("tig", func(b *testing.B) {
		g, conns := setup()
		full := tig.Config{ColBounds: geom.Iv(0, 95), RowBounds: geom.Iv(0, 95)}
		expanded := 0
		for i := 0; i < b.N; i++ {
			expanded = 0
			for _, c := range conns {
				res, ok := tig.Search(g, c[0], c[1], full)
				if !ok {
					b.Fatal("tig failed on an open field")
				}
				expanded += res.Expanded
			}
		}
		b.ReportMetric(float64(expanded)/float64(len(conns)), "nodes/conn")
	})
	b.Run("maze", func(b *testing.B) {
		g, conns := setup()
		cb, rb := geom.Iv(0, 95), geom.Iv(0, 95)
		expanded := 0
		for i := 0; i < b.N; i++ {
			expanded = 0
			for _, c := range conns {
				res, ok := maze.Route(g, c[0], c[1], cb, rb)
				if !ok {
					b.Fatal("maze failed on an open field")
				}
				expanded += res.Expanded
			}
		}
		b.ReportMetric(float64(expanded)/float64(len(conns)), "nodes/conn")
	})
}

// --- Ablations -------------------------------------------------------------

func benchProposedWithCore(b *testing.B, cfg core.Config) *flow.Result {
	b.Helper()
	inst, err := gen.Ami33Like()
	if err != nil {
		b.Fatal(err)
	}
	res, err := flow.Proposed(inst, flow.Options{Core: &cfg})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationCostWeights compares the paper's sparse weights,
// the dense preset, and a wire-length-only objective (section 3.2).
func BenchmarkAblationCostWeights(b *testing.B) {
	for _, w := range []struct {
		name string
		w    core.Weights
	}{
		{"sparse", core.SparseWeights()},
		{"dense", core.DenseWeights()},
		{"length-only", core.LengthOnlyWeights()},
	} {
		b.Run(w.name, func(b *testing.B) {
			var res *flow.Result
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Weights = w.w
				res = benchProposedWithCore(b, cfg)
			}
			b.ReportMetric(float64(res.WireLength), "wire")
			b.ReportMetric(float64(res.Vias), "vias")
		})
	}
}

// BenchmarkAblationNetOrdering compares the paper's longest-distance
// default against the alternatives (section 3).
func BenchmarkAblationNetOrdering(b *testing.B) {
	for _, o := range []core.Order{core.LongestFirst, core.ShortestFirst, core.CriticalityFirst} {
		b.Run(o.String(), func(b *testing.B) {
			var res *flow.Result
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Order = o
				res = benchProposedWithCore(b, cfg)
			}
			b.ReportMetric(float64(res.WireLength), "wire")
			b.ReportMetric(float64(res.LevelB.Expanded), "nodes-expanded")
		})
	}
}

// BenchmarkAblationTrackPruning measures the examine-each-vertex-once
// rule (section 3.1): strict vs relaxed.
func BenchmarkAblationTrackPruning(b *testing.B) {
	for _, r := range []struct {
		name    string
		relaxed bool
	}{{"strict", false}, {"relaxed", true}} {
		b.Run(r.name, func(b *testing.B) {
			var res *flow.Result
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.RelaxedVisit = r.relaxed
				res = benchProposedWithCore(b, cfg)
			}
			b.ReportMetric(float64(res.LevelB.Expanded), "nodes-expanded")
			b.ReportMetric(float64(res.Vias), "vias")
		})
	}
}

// BenchmarkAblationSteiner compares the Steiner-attaching Prim
// decomposition with the plain MST (section 3.3).
func BenchmarkAblationSteiner(b *testing.B) {
	for _, m := range []struct {
		name  string
		plain bool
	}{{"steiner", false}, {"plain-mst", true}} {
		b.Run(m.name, func(b *testing.B) {
			var res *flow.Result
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.PlainMST = m.plain
				res = benchProposedWithCore(b, cfg)
			}
			b.ReportMetric(float64(res.WireLength), "wire")
		})
	}
}

// BenchmarkAblationPartition varies the net partitioning policy
// (sections 2 and 5): the paper's by-class split, everything over the
// cells, and a half-perimeter threshold split.
func BenchmarkAblationPartition(b *testing.B) {
	type variant struct {
		name string
		run  func(*gen.Instance, flow.Options) (*flow.Result, error)
	}
	for _, v := range []variant{
		{"by-class", flow.Proposed},
		{"all-level-b", flow.ChannelFree},
		{"all-level-a", flow.TwoLayerBaseline},
	} {
		b.Run(v.name, func(b *testing.B) {
			var res *flow.Result
			for i := 0; i < b.N; i++ {
				res = runFlow(b, gen.Ami33Like, v.run)
			}
			b.ReportMetric(float64(res.Area), "area")
		})
	}
}

// BenchmarkChannelRouters compares the three channel routing
// algorithms on the baseline flow's channel problems.
func BenchmarkChannelRouters(b *testing.B) {
	for _, a := range []struct {
		name string
		algo flow.ChannelAlgo
	}{
		{"auto", flow.AutoChannel},
		{"greedy", flow.GreedyChannel},
	} {
		b.Run(a.name, func(b *testing.B) {
			var res *flow.Result
			for i := 0; i < b.N; i++ {
				inst, err := gen.Ami33Like()
				if err != nil {
					b.Fatal(err)
				}
				res, err = flow.TwoLayerBaseline(inst, flow.Options{Channel: a.algo})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Area), "area")
			b.ReportMetric(float64(res.Vias), "vias")
		})
	}
}

// BenchmarkSteinerLibrary exercises the pure geometric RST/MST
// construction used by wire estimation.
func BenchmarkSteinerLibrary(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, 24)
	for i := range pts {
		pts[i] = geom.Pt(rng.Intn(1000), rng.Intn(1000))
	}
	b.Run("rst", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if t := steiner.RST(pts); t.Length == 0 {
				b.Fatal("empty tree")
			}
		}
	})
	b.Run("mst", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, l := steiner.MST(pts); l == 0 {
				b.Fatal("empty tree")
			}
		}
	})
}

// BenchmarkAblationCoupling measures the optional cross-talk term of
// section 3.2 on the proposed flow.
func BenchmarkAblationCoupling(b *testing.B) {
	for _, v := range []struct {
		name     string
		coupling float64
	}{{"off", 0}, {"on", 5}} {
		b.Run(v.name, func(b *testing.B) {
			var res *flow.Result
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Weights.Coupling = v.coupling
				res = benchProposedWithCore(b, cfg)
			}
			b.ReportMetric(float64(res.WireLength), "wire")
			b.ReportMetric(float64(res.Vias), "vias")
		})
	}
}

// BenchmarkAblationRipup measures the recovery machinery: the
// benchmark family completes in the first strict pass, so the rip-up
// ablation shows the zero-overhead property of the disabled passes.
func BenchmarkAblationRipup(b *testing.B) {
	for _, v := range []struct {
		name   string
		passes int
	}{{"enabled", 0}, {"disabled", -1}} {
		b.Run(v.name, func(b *testing.B) {
			var res *flow.Result
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.RipupPasses = v.passes
				res = benchProposedWithCore(b, cfg)
			}
			b.ReportMetric(float64(res.LevelB.Failed), "failed")
		})
	}
}

// BenchmarkChannelAlgorithms compares the four detailed channel
// routers head to head on a family of random channel problems
// (left-edge and friends skip instances with cyclic constraints).
func BenchmarkChannelAlgorithms(b *testing.B) {
	problems := func() []*channel.Problem {
		rng := rand.New(rand.NewSource(77))
		var out []*channel.Problem
		for len(out) < 20 {
			p := randomChannel(rng, 30, 8)
			if p.Validate() == nil {
				out = append(out, p)
			}
		}
		return out
	}()
	algos := []struct {
		name string
		run  func(*channel.Problem) (*channel.Solution, error)
	}{
		{"left-edge", channel.LeftEdge},
		{"dogleg", channel.Dogleg},
		{"net-merge", channel.NetMerge},
		{"greedy", channel.Greedy},
	}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			tracks, solved := 0, 0
			for i := 0; i < b.N; i++ {
				tracks, solved = 0, 0
				for _, p := range problems {
					s, err := a.run(p)
					if err != nil {
						continue
					}
					tracks += s.Tracks
					solved++
				}
			}
			if solved == 0 {
				b.Fatal("algorithm solved nothing")
			}
			b.ReportMetric(float64(tracks)/float64(solved), "tracks/channel")
			b.ReportMetric(float64(solved), "solved-of-20")
		})
	}
}

// randomChannel builds a valid random channel instance (same scheme as
// the channel package's tests).
func randomChannel(rng *rand.Rand, width, nets int) *channel.Problem {
	p := &channel.Problem{Top: make([]int, width), Bottom: make([]int, width)}
	type slot struct{ col, side int }
	var free []slot
	for c := 0; c < width; c++ {
		free = append(free, slot{c, 0}, slot{c, 1})
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	idx := 0
	for n := 1; n <= nets && idx+1 < len(free); n++ {
		pins := 2 + rng.Intn(3)
		for k := 0; k < pins && idx < len(free); k++ {
			s := free[idx]
			idx++
			if s.side == 0 {
				p.Top[s.col] = n
			} else {
				p.Bottom[s.col] = n
			}
		}
	}
	count := map[int]int{}
	for _, n := range p.Top {
		count[n]++
	}
	for _, n := range p.Bottom {
		count[n]++
	}
	for c := 0; c < width; c++ {
		if count[p.Top[c]] < 2 {
			p.Top[c] = 0
		}
		if count[p.Bottom[c]] < 2 {
			p.Bottom[c] = 0
		}
	}
	return p
}

// BenchmarkDelayMotivation quantifies the paper's section 2 rationale
// for the net partition: over-cell nets are shorter and run on the
// wide, low-resistance layer pair, so their Elmore delays drop.
func BenchmarkDelayMotivation(b *testing.B) {
	for _, m := range instances {
		b.Run(m.name, func(b *testing.B) {
			var base, prop *flow.Result
			for i := 0; i < b.N; i++ {
				base = runFlow(b, m.mk, flow.TwoLayerBaseline)
				prop = runFlow(b, m.mk, flow.Proposed)
			}
			b.ReportMetric(metrics.Reduction(int64(base.Delay.Mean), int64(prop.Delay.Mean)), "%mean-delay-red")
			b.ReportMetric(metrics.Reduction(int64(base.Delay.Max), int64(prop.Delay.Max)), "%max-delay-red")
		})
	}
}

// BenchmarkInstanceSizeSweep scales the chip (rows x cells x nets) and
// reports the area reduction of the proposed flow at each size: the
// paper's advantage is not an artefact of one instance size.
func BenchmarkInstanceSizeSweep(b *testing.B) {
	sizes := []struct {
		name        string
		rows, cells int
		signal      int
		levelA      []int
	}{
		{"small-16c", 3, 16, 60, []int{20, 12, 6, 4}},
		{"medium-48c", 5, 48, 260, []int{32, 24, 10, 8, 6, 4}},
		{"large-96c", 8, 96, 600, []int{40, 38, 12, 10, 8, 8, 6, 6, 4, 4}},
	}
	for _, sz := range sizes {
		b.Run(sz.name, func(b *testing.B) {
			mk := func() (*gen.Instance, error) {
				return gen.Generate(gen.Params{
					Name: sz.name, Seed: 1000 + int64(sz.cells),
					Rows: sz.rows, Cells: sz.cells,
					CellWMin: 240, CellWMax: 420, CellHMin: 150, CellHMax: 230,
					RowGap: 96, Margin: 48,
					SensitivePerMille: 60,
					SignalNets:        sz.signal,
					LevelANets:        sz.levelA,
					RailHalfWidth:     6,
				})
			}
			var c metrics.Comparison
			for i := 0; i < b.N; i++ {
				c = metrics.Comparison{
					Base: runFlow(b, mk, flow.TwoLayerBaseline),
					New:  runFlow(b, mk, flow.Proposed),
				}
			}
			b.ReportMetric(c.AreaReduction(), "%area-red")
			b.ReportMetric(c.WireReduction(), "%wire-red")
		})
	}
}
