package overcell

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the documented public API end to end.
func TestFacadeQuickstart(t *testing.T) {
	g, err := UniformGrid(20, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	g.BlockRect(R(80, 80, 120, 120), MaskBoth)
	nl := NewNetlist()
	nl.AddPoints("a", Signal, Pt(10, 100), Pt(180, 100))
	nl.AddPoints("b", Critical, Pt(100, 10), Pt(100, 180))
	res, err := NewRouter(g, DefaultRouterConfig()).Route(nl.Nets())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed nets: %d", res.Failed)
	}
	art := RenderASCII(g, res, 1)
	if !strings.Contains(art, "#") || !strings.ContainsAny(art, "-|") {
		t.Error("render missing obstacles or wires")
	}
	if NetReport(res) == "" {
		t.Error("empty net report")
	}
}

func TestFacadeFlows(t *testing.T) {
	inst, err := Ami33Like()
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunTwoLayerBaseline(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inst2, err := Ami33Like()
	if err != nil {
		t.Fatal(err)
	}
	prop, err := RunProposed(inst2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Reduction(base.Area, prop.Area) <= 0 {
		t.Errorf("no area reduction: %d -> %d", base.Area, prop.Area)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, inst2, prop); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("bad SVG output")
	}
}

func TestFacadeWeightsAndGrids(t *testing.T) {
	if SparseWeights().Drg != 10 || DenseWeights().Drg != 40 {
		t.Error("weight presets wrong")
	}
	if _, err := NewGrid(nil, nil); err == nil {
		t.Error("invalid grid accepted")
	}
	g, err := CoverGrid(R(0, 0, 100, 50), 10)
	if err != nil || g.NX() != 11 || g.NY() != 6 {
		t.Errorf("CoverGrid = %dx%d, %v", g.NX(), g.NY(), err)
	}
}

func TestFacadeGenerate(t *testing.T) {
	inst, err := Generate(InstanceParams{
		Name: "tiny", Seed: 5,
		Rows: 2, Cells: 6,
		CellWMin: 200, CellWMax: 300, CellHMin: 120, CellHMax: 160,
		RowGap: 64, Margin: 48,
		SignalNets: 20,
		LevelANets: []int{4, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunProposed(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LevelB == nil || res.LevelB.Failed != 0 {
		t.Error("tiny instance failed to route")
	}
}

func TestFacadeChannelSubstrate(t *testing.T) {
	p := &ChannelProblem{
		Top:    []int{1, 0, 2, 1},
		Bottom: []int{0, 1, 0, 2},
	}
	for name, run := range map[string]func(*ChannelProblem) (*ChannelSolution, error){
		"left-edge": RouteChannelLeftEdge,
		"dogleg":    RouteChannelDogleg,
		"net-merge": RouteChannelNetMerge,
		"greedy":    RouteChannelGreedy,
	} {
		s, err := run(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(p); err != nil {
			t.Fatalf("%s: invalid: %v", name, err)
		}
		if RenderChannelASCII(p, s) == "" {
			t.Errorf("%s: empty rendering", name)
		}
	}
}

func TestFacadeDelay(t *testing.T) {
	p := DefaultDelayParams()
	slow := EstimateDelay(DelayNet{WireM12: 2000, Vias: 6, Sinks: 3}, p)
	fast := EstimateDelay(DelayNet{WireM34: 1200, Vias: 2, Sinks: 3}, p)
	if fast >= slow {
		t.Errorf("over-cell net not faster: %v vs %v", fast, slow)
	}
}
