// Command benchdiff compares two bench-JSON snapshots (cmd/benchjson
// output) and gates on regressions:
//
//	benchdiff BENCH_pr2.json BENCH_pr3.json    explicit old vs new
//	benchdiff fresh.json                       baseline = newest committed
//	                                           BENCH_*.json (excluding the arg)
//	benchdiff -max-regress 0.05 old.json new.json
//	benchdiff -warn -o delta.md old.json new.json
//	benchdiff -warn -gate-allocs 'levelb/nets100/,table2/ami33' old.json new.json
//
// The delta table is written as markdown to stdout (or -o). Exit
// status: 0 when no shared workload regressed, 1 on regression (unless
// -warn demotes it to a note), 2 on usage or I/O errors.
//
// Snapshots measured on different hosts (per their embedded host
// metadata) are compared for information only and never gate;
// -ignore-host forces gating anyway.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"overcell/internal/obs"
)

func main() {
	maxRegress := flag.Float64("max-regress", 0, "tolerated fractional ns/op slowdown (0 = default 0.10, negative disables)")
	maxAlloc := flag.Float64("max-alloc-regress", 0, "tolerated fractional allocs/op growth (0 = default 0.10, negative disables)")
	warn := flag.Bool("warn", false, "report regressions but exit 0")
	gateAllocs := flag.String("gate-allocs", "", "comma-separated workload-name prefixes whose allocs/op regressions fail even with -warn and across host mismatch")
	ignoreHost := flag.Bool("ignore-host", false, "gate even when snapshots come from different hosts")
	out := flag.String("o", "", "write the markdown table to this file instead of stdout")
	flag.Parse()

	var oldPath, newPath string
	switch flag.NArg() {
	case 1:
		newPath = flag.Arg(0)
		var err error
		if oldPath, err = newestCommitted(newPath); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: baseline %s\n", oldPath)
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		die(fmt.Errorf("usage: benchdiff [flags] [OLD.json] NEW.json"))
	}

	oldF, err := readBench(oldPath)
	if err != nil {
		die(err)
	}
	newF, err := readBench(newPath)
	if err != nil {
		die(err)
	}

	var gates []string
	for _, p := range strings.Split(*gateAllocs, ",") {
		if p = strings.TrimSpace(p); p != "" {
			gates = append(gates, p)
		}
	}

	d := obs.DiffBench(oldF, newF, obs.DiffOptions{
		MaxRegress:      *maxRegress,
		MaxAllocRegress: *maxAlloc,
		IgnoreHost:      *ignoreHost,
		GateAllocs:      gates,
	})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}
	if err := d.WriteMarkdown(w); err != nil {
		die(err)
	}

	if d.AllocGated() {
		// The allocs gate is deliberately immune to -warn: allocation
		// counts are deterministic, so a growth on a gated workload is
		// a real regression wherever it was measured.
		fmt.Fprintln(os.Stderr, "benchdiff: allocs/op gate tripped")
		os.Exit(1)
	}
	if d.Regressed() {
		if *warn {
			fmt.Fprintln(os.Stderr, "benchdiff: regression detected (warn-only, exit 0)")
			return
		}
		fmt.Fprintln(os.Stderr, "benchdiff: regression detected")
		os.Exit(1)
	}
}

// newestCommitted picks the baseline for single-argument mode: the
// BENCH_*.json in the current directory with the latest generated_at
// stamp (file mtime when absent), excluding the snapshot under test.
func newestCommitted(exclude string) (string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", err
	}
	type cand struct {
		path string
		key  string
	}
	var cands []cand
	excl, _ := filepath.Abs(exclude)
	for _, m := range matches {
		if abs, _ := filepath.Abs(m); abs == excl {
			continue
		}
		f, err := readBench(m)
		if err != nil {
			return "", fmt.Errorf("candidate baseline %s: %w", m, err)
		}
		key := f.GeneratedAt
		if key == "" {
			if st, err := os.Stat(m); err == nil {
				key = st.ModTime().UTC().Format("2006-01-02T15:04:05Z")
			}
		}
		cands = append(cands, cand{m, key})
	}
	if len(cands) == 0 {
		return "", fmt.Errorf("no committed BENCH_*.json baseline found")
	}
	// RFC 3339 stamps sort lexically; ties break on path for determinism.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].key != cands[j].key {
			return cands[i].key > cands[j].key
		}
		return cands[i].path > cands[j].path
	})
	return cands[0].path, nil
}

func readBench(path string) (*obs.BenchFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	bf, err := obs.ReadBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return bf, nil
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
