package main

import (
	"os"
	"strings"
	"testing"

	"overcell/internal/obs"
)

func writeSnapshot(t *testing.T, path, tag, generatedAt string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	err = obs.WriteBench(f, &obs.BenchFile{
		Schema: obs.BenchSchemaVersion, Tag: tag, GoVersion: "go1.24.0",
		GeneratedAt: generatedAt,
		Host:        &obs.BenchHost{GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 1, NumCPU: 1},
		Benchmarks:  []obs.BenchEntry{{Name: "levelb/nets100/seq", Runs: 3, NsPerOp: 1000}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNewestCommittedNoBaseline locks the loud-failure contract of
// single-argument mode: with no committed BENCH_*.json present,
// newestCommitted must return an error (which main routes to die and
// exit status 2) rather than silently comparing nothing.
func TestNewestCommittedNoBaseline(t *testing.T) {
	t.Chdir(t.TempDir())
	writeSnapshot(t, "fresh.json", "fresh", "2026-08-06T00:00:00Z")
	if _, err := newestCommitted("fresh.json"); err == nil {
		t.Fatal("newestCommitted with no baselines returned nil error; single-arg mode would gate against nothing")
	} else if !strings.Contains(err.Error(), "no committed BENCH_") {
		t.Fatalf("error %q does not name the missing baseline pattern", err)
	}
}

// TestNewestCommittedExcludesSelf: the snapshot under test never
// serves as its own baseline, even when it matches BENCH_*.json.
func TestNewestCommittedExcludesSelf(t *testing.T) {
	t.Chdir(t.TempDir())
	writeSnapshot(t, "BENCH_new.json", "new", "2026-08-06T00:00:00Z")
	if _, err := newestCommitted("BENCH_new.json"); err == nil {
		t.Fatal("snapshot under test was accepted as its own baseline")
	}
}

// TestNewestCommittedPicksLatest: among several committed snapshots
// the one with the newest generated_at stamp wins, regardless of glob
// or mtime order.
func TestNewestCommittedPicksLatest(t *testing.T) {
	t.Chdir(t.TempDir())
	writeSnapshot(t, "BENCH_pr3.json", "pr3", "2026-05-01T00:00:00Z")
	writeSnapshot(t, "BENCH_pr5.json", "pr5", "2026-08-06T00:00:00Z")
	writeSnapshot(t, "BENCH_pr4.json", "pr4", "2026-06-15T00:00:00Z")
	writeSnapshot(t, "fresh.json", "fresh", "2026-08-07T00:00:00Z")
	got, err := newestCommitted("fresh.json")
	if err != nil {
		t.Fatal(err)
	}
	if got != "BENCH_pr5.json" {
		t.Fatalf("newestCommitted = %q, want BENCH_pr5.json", got)
	}
}

// TestNewestCommittedRejectsCorruptBaseline: a malformed committed
// snapshot is an error, not a silently skipped candidate.
func TestNewestCommittedRejectsCorruptBaseline(t *testing.T) {
	t.Chdir(t.TempDir())
	if err := os.WriteFile("BENCH_bad.json", []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	writeSnapshot(t, "fresh.json", "fresh", "2026-08-06T00:00:00Z")
	if _, err := newestCommitted("fresh.json"); err == nil {
		t.Fatal("corrupt baseline candidate was silently ignored")
	}
}
