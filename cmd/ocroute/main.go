// Command ocroute routes a macro-cell instance end to end and reports
// the metrics of the chosen flow:
//
//	benchgen -name xerox | ocroute -flow proposed
//	ocroute -in chip.json -flow baseline
//	ocroute -in chip.json -flow proposed -svg routed.svg -nets
//	ocroute -in chip.json -stats -trace run.ndjson -heatmap heat.svg
//
// Flows: baseline (all nets in two-layer channels), proposed (the
// paper's over-cell methodology), channel4 (optimistic four-layer
// channel model), channelfree (everything over the cells).
//
// Observability: -trace streams every routing event as NDJSON, -stats
// prints the aggregate collector summary (search expansions,
// escalations, rip-up outcomes, phase times), -heatmap writes the
// per-window congestion map of the level B grid (SVG when the file
// ends in .svg, ASCII otherwise), and -cpuprofile/-memprofile write
// standard pprof profiles. -perf-report writes the performance
// attribution report (per-phase allocation deltas, speculation
// pipeline wait times, conflict pairs) as JSON and prints the human
// table; profiles captured alongside it carry pprof labels (run,
// phase, worker, net).
//
// Robustness: -deadline bounds the run's wall clock, -budget and
// -total-budget cap search expansions per net and per run, and
// -partial accepts runs where some nets degraded instead of failing
// the whole route. A run that trips a sticky bound (deadline or total
// budget) still prints its verified partial result and exits 2.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"overcell/internal/flow"
	"overcell/internal/gen"
	"overcell/internal/metrics"
	"overcell/internal/obs"
	"overcell/internal/obs/perf"
	"overcell/internal/render"
	"overcell/internal/robust"
	"overcell/internal/version"
)

func main() {
	os.Exit(run())
}

func run() int {
	in := flag.String("in", "", "instance JSON (default stdin)")
	flowName := flag.String("flow", "proposed", "flow: baseline, proposed, channel4, channelfree, all")
	svg := flag.String("svg", "", "write the routed layout as SVG to this file")
	dump := flag.String("dump", "", "write the full level B geometry as text to this file")
	nets := flag.Bool("nets", false, "print the per-net level B table (wire, vias, expanded, escalations, failures)")
	trace := flag.String("trace", "", "stream routing events as NDJSON to this file")
	stats := flag.Bool("stats", false, "print the aggregated routing statistics summary")
	heatmap := flag.String("heatmap", "", "write the level B congestion heatmap to this file (.svg for SVG, anything else for ASCII)")
	heatwin := flag.Int("heatwin", 8, "heatmap window size in tracks")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for the whole run (0 = none)")
	budget := flag.Int64("budget", 0, "search-expansion budget per net (0 = unlimited)")
	totalBudget := flag.Int64("total-budget", 0, "search-expansion budget for the whole run (0 = unlimited)")
	partial := flag.Bool("partial", false, "accept runs where some nets degraded under the budget instead of failing")
	workers := flag.Int("workers", 0, "level B speculative routing workers (0 = GOMAXPROCS, 1 = serial; results identical)")
	perfReport := flag.String("perf-report", "", "write the perf-attribution report as JSON to this file and print the summary table (- for table only)")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("ocroute %s (%s)\n", version.String(), version.Go())
		return 0
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			die(err)
		}
		defer f.Close()
		r = f
	}
	inst, err := gen.ReadJSON(r)
	if err != nil {
		die(err)
	}

	var collector *obs.Collector
	var tracers []obs.Tracer
	if *stats {
		collector = obs.NewCollector()
		tracers = append(tracers, collector)
	}
	var traceBuf *bufio.Writer
	var traceWriter *obs.Writer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			die(err)
		}
		defer f.Close()
		traceBuf = bufio.NewWriter(f)
		traceWriter = obs.NewWriter(traceBuf)
		tracers = append(tracers, traceWriter)
	}
	opts := flow.Options{
		Tracer: obs.Combine(tracers...),
		Limits: robust.Limits{
			NetExpansions:   *budget,
			TotalExpansions: *totalBudget,
			Timeout:         *deadline,
		},
		AllowPartial: *partial,
		Workers:      *workers,
	}
	var pc *perf.Collector
	if *perfReport != "" {
		pc = perf.New(perf.Options{Run: inst.Name})
		opts.Perf = pc
		opts.RunID = inst.Name
	}
	// Label the run whenever a profile or a perf report is requested, so
	// captured samples attribute per phase and worker.
	opts.ProfileLabels = *perfReport != "" || *cpuprofile != "" || *memprofile != ""

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			die(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			die(err)
		}
		defer pprof.StopCPUProfile()
	}

	flows := map[string]func(*gen.Instance, flow.Options) (*flow.Result, error){
		"baseline":    flow.TwoLayerBaseline,
		"proposed":    flow.Proposed,
		"channel4":    flow.FourLayerChannel,
		"channelfree": flow.ChannelFree,
	}
	var res *flow.Result
	degraded := false
	if *flowName == "all" {
		// Flows re-place the shared layout, so each runs on a fresh copy
		// decoded from the serialised instance.
		var buf bytes.Buffer
		if err := inst.WriteJSON(&buf); err != nil {
			die(err)
		}
		for _, name := range []string{"baseline", "channel4", "proposed", "channelfree"} {
			copyInst, err := gen.ReadJSON(bytes.NewReader(buf.Bytes()))
			if err != nil {
				die(err)
			}
			res, err = flows[name](copyInst, opts)
			if err != nil {
				die(fmt.Errorf("%s: %w", name, err))
			}
			fmt.Println(metrics.FlowLine(inst.Name+"/"+res.Flow, res))
		}
	} else {
		flowFn, ok := flows[*flowName]
		if !ok {
			die(fmt.Errorf("unknown flow %q", *flowName))
		}
		var ferr error
		res, ferr = flowFn(inst, opts)
		if ferr != nil {
			// Sticky budget trips and cancellations return the verified
			// partial result alongside the error; report it and exit 2
			// below instead of dying.
			if res == nil || res.LevelB == nil {
				die(ferr)
			}
			fmt.Fprintln(os.Stderr, "ocroute: partial result:", ferr)
			degraded = true
		}
		fmt.Println(metrics.FlowLine(inst.Name+"/"+res.Flow, res))
		if res.Degraded > 0 {
			fmt.Printf("degraded: %d nets hit the work budget\n", res.Degraded)
		}
		if res.LevelB != nil {
			fmt.Printf("level B: %d nets, %d corners, %d search nodes expanded\n",
				len(res.LevelB.Routes), res.LevelB.Corners, res.LevelB.Expanded)
			if *nets {
				fmt.Print(render.NetTable(res.LevelB))
			}
		}
	}

	if traceWriter != nil {
		if err := traceWriter.Err(); err != nil {
			die(err)
		}
		if err := traceBuf.Flush(); err != nil {
			die(err)
		}
		fmt.Printf("wrote %s (%d events)\n", *trace, traceWriter.Events())
	}
	if collector != nil {
		fmt.Print(collector.Summary())
	}
	if pc != nil {
		pc.Finish()
		rep := pc.Report()
		if *perfReport != "-" {
			f, err := os.Create(*perfReport)
			if err != nil {
				die(err)
			}
			defer f.Close()
			if err := rep.WriteJSON(f); err != nil {
				die(err)
			}
			fmt.Println("wrote", *perfReport)
		}
		fmt.Print(rep.Table())
	}
	if *heatmap != "" {
		if res == nil || res.BGrid == nil {
			die(fmt.Errorf("flow %q has no level B grid to map; use -flow proposed or channelfree", *flowName))
		}
		h := obs.CollectHeatmap(res.BGrid, *heatwin)
		f, err := os.Create(*heatmap)
		if err != nil {
			die(err)
		}
		defer f.Close()
		if strings.HasSuffix(*heatmap, ".svg") {
			err = render.HeatmapSVG(f, h)
		} else {
			_, err = io.WriteString(f, render.HeatmapASCII(h))
		}
		if err != nil {
			die(err)
		}
		c, r, occ := h.Hottest()
		fmt.Printf("wrote %s (hottest tile (%d,%d) occ=%.2f)\n", *heatmap, c, r, occ)
	}
	if *dump != "" && res != nil && res.LevelB != nil {
		f, err := os.Create(*dump)
		if err != nil {
			die(err)
		}
		defer f.Close()
		if err := render.TextDump(f, res.LevelB); err != nil {
			die(err)
		}
		fmt.Println("wrote", *dump)
	}
	if *svg != "" && res != nil {
		f, err := os.Create(*svg)
		if err != nil {
			die(err)
		}
		defer f.Close()
		if err := render.SVG(f, inst.Layout, res.BGrid, res.LevelB); err != nil {
			die(err)
		}
		fmt.Println("wrote", *svg)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			die(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			die(err)
		}
	}
	if degraded {
		return 2
	}
	return 0
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "ocroute:", err)
	os.Exit(1)
}
