// Command ocroute routes a macro-cell instance end to end and reports
// the metrics of the chosen flow:
//
//	benchgen -name xerox | ocroute -flow proposed
//	ocroute -in chip.json -flow baseline
//	ocroute -in chip.json -flow proposed -svg routed.svg -nets
//
// Flows: baseline (all nets in two-layer channels), proposed (the
// paper's over-cell methodology), channel4 (optimistic four-layer
// channel model), channelfree (everything over the cells).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"overcell/internal/flow"
	"overcell/internal/gen"
	"overcell/internal/metrics"
	"overcell/internal/render"
)

func main() {
	in := flag.String("in", "", "instance JSON (default stdin)")
	flowName := flag.String("flow", "proposed", "flow: baseline, proposed, channel4, channelfree, all")
	svg := flag.String("svg", "", "write the routed layout as SVG to this file")
	dump := flag.String("dump", "", "write the full level B geometry as text to this file")
	nets := flag.Bool("nets", false, "print the per-net level B table")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			die(err)
		}
		defer f.Close()
		r = f
	}
	inst, err := gen.ReadJSON(r)
	if err != nil {
		die(err)
	}

	flows := map[string]func(*gen.Instance, flow.Options) (*flow.Result, error){
		"baseline":    flow.TwoLayerBaseline,
		"proposed":    flow.Proposed,
		"channel4":    flow.FourLayerChannel,
		"channelfree": flow.ChannelFree,
	}
	if *flowName == "all" {
		// Flows re-place the shared layout, so each runs on a fresh copy
		// decoded from the serialised instance.
		var buf bytes.Buffer
		if err := inst.WriteJSON(&buf); err != nil {
			die(err)
		}
		for _, name := range []string{"baseline", "channel4", "proposed", "channelfree"} {
			copyInst, err := gen.ReadJSON(bytes.NewReader(buf.Bytes()))
			if err != nil {
				die(err)
			}
			res, err := flows[name](copyInst, flow.Options{})
			if err != nil {
				die(fmt.Errorf("%s: %w", name, err))
			}
			fmt.Println(metrics.FlowLine(inst.Name+"/"+res.Flow, res))
		}
		return
	}
	run, ok := flows[*flowName]
	if !ok {
		die(fmt.Errorf("unknown flow %q", *flowName))
	}
	res, err := run(inst, flow.Options{})
	if err != nil {
		die(err)
	}
	fmt.Println(metrics.FlowLine(inst.Name+"/"+res.Flow, res))
	if res.LevelB != nil {
		fmt.Printf("level B: %d nets, %d corners, %d search nodes expanded\n",
			len(res.LevelB.Routes), res.LevelB.Corners, res.LevelB.Expanded)
		if *nets {
			fmt.Print(render.NetTable(res.LevelB))
		}
	}
	if *dump != "" && res.LevelB != nil {
		f, err := os.Create(*dump)
		if err != nil {
			die(err)
		}
		defer f.Close()
		if err := render.TextDump(f, res.LevelB); err != nil {
			die(err)
		}
		fmt.Println("wrote", *dump)
	}
	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			die(err)
		}
		defer f.Close()
		if err := render.SVG(f, inst.Layout, res.BGrid, res.LevelB); err != nil {
			die(err)
		}
		fmt.Println("wrote", *svg)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "ocroute:", err)
	os.Exit(1)
}
