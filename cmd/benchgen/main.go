// Command benchgen emits synthetic macro-cell benchmark instances as
// JSON, either one of the three evaluation instances or a parametric
// random instance:
//
//	benchgen -name ami33 > ami33.json
//	benchgen -name custom -seed 7 -rows 3 -cells 12 -signal 80 -levela 4,5,6 > my.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"overcell/internal/gen"
)

func main() {
	name := flag.String("name", "ami33", "instance: ami33, xerox, ex3, or custom")
	seed := flag.Int64("seed", 1, "custom: RNG seed")
	rows := flag.Int("rows", 3, "custom: cell rows")
	cells := flag.Int("cells", 12, "custom: total cells")
	signal := flag.Int("signal", 60, "custom: signal (level B) nets")
	levela := flag.String("levela", "4,4", "custom: comma-separated pin counts of the level A nets")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var inst *gen.Instance
	var err error
	switch *name {
	case "ami33":
		inst, err = gen.Ami33Like()
	case "xerox":
		inst, err = gen.XeroxLike()
	case "ex3":
		inst, err = gen.Ex3Like()
	case "custom":
		var la []int
		for _, part := range strings.Split(*levela, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			n, perr := strconv.Atoi(part)
			if perr != nil {
				die(fmt.Errorf("bad -levela entry %q: %w", part, perr))
			}
			la = append(la, n)
		}
		inst, err = gen.Generate(gen.Params{
			Name: "custom", Seed: *seed,
			Rows: *rows, Cells: *cells,
			CellWMin: 240, CellWMax: 420, CellHMin: 140, CellHMax: 220,
			RowGap: 64, Margin: 48,
			SensitivePerMille: 80,
			SignalNets:        *signal,
			LevelANets:        la,
			RailHalfWidth:     6,
		})
	default:
		die(fmt.Errorf("unknown instance %q", *name))
	}
	if err != nil {
		die(err)
	}
	w := os.Stdout
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			die(ferr)
		}
		defer f.Close()
		w = f
	}
	if err := inst.WriteJSON(w); err != nil {
		die(err)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
