// Command figures regenerates the paper's figures:
//
//	figures -fig 1             the level B instance and its Track Intersection Graph
//	figures -fig 2             the Path Selection Trees for net B
//	figures -fig 3             the level B routing of ami33 (ASCII)
//	figures -fig 3 -svg f.svg  the same as SVG
//	figures -fig all           everything (ASCII)
package main

import (
	"flag"
	"fmt"
	"os"

	"overcell/internal/paper"
)

func main() {
	fig := flag.String("fig", "all", "which figure: 1, 2, 3, all")
	svg := flag.String("svg", "", "write figure 3 as SVG to this file")
	flag.Parse()

	switch *fig {
	case "1":
		fmt.Print(paper.Figure1Text())
	case "2":
		fmt.Print(paper.Figure2Text())
	case "3":
		fig3(*svg)
	case "all":
		fmt.Print(paper.Figure1Text())
		fmt.Println()
		fmt.Print(paper.Figure2Text())
		fmt.Println()
		fig3(*svg)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func fig3(svgPath string) {
	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			die(err)
		}
		defer f.Close()
		if err := paper.Figure3SVG(f); err != nil {
			die(err)
		}
		fmt.Println("wrote", svgPath)
		return
	}
	txt, err := paper.Figure3Text()
	if err != nil {
		die(err)
	}
	fmt.Print(txt)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
