// Command oclint is the router's vettool: it bundles the
// internal/analysis suite (maporder, checkedverify, pointkey,
// staticdrc, shadowbuiltin, nondeterm, specwrite, hotalloc) into a
// single binary speaking the `go vet` separate-compilation protocol,
// and doubles as a standalone checker.
//
// The fact-propagating analyzers (nondeterm, specwrite, hotalloc)
// attach properties to functions and follow them across package
// boundaries. In standalone mode packages are analyzed in dependency
// order over one shared fact store; in vet mode facts travel between
// compilation units through the protocol's .vetx files.
//
// Usage:
//
//	go vet -vettool=$(which oclint) ./...   # alongside a normal build
//	oclint ./...                            # standalone, loads via go list
//	oclint -github ./...                    # findings as GitHub annotations
//	oclint help                             # list analyzers
//
// The protocol required by `go vet -vettool` (see
// cmd/go/internal/work/buildid.go and .../vet/vetflag.go):
//
//	-V=full    print a content-derived version line for build caching
//	-flags     describe supported flags as JSON
//	unit.cfg   analyze the single compilation unit described by the file
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"overcell/internal/analysis"
	"overcell/internal/analysis/framework"
)

// triState distinguishes unset from explicit true/false so that
// -maporder / -maporder=false select or deselect analyzers the same
// way x/tools multicheckers do.
type triState int

const (
	unset triState = iota
	setTrue
	setFalse
)

func (t *triState) IsBoolFlag() bool { return true }
func (t *triState) String() string   { return "" }
func (t *triState) Set(s string) error {
	switch s {
	case "true", "1":
		*t = setTrue
	case "false", "0":
		*t = setFalse
	default:
		return fmt.Errorf("invalid boolean %q", s)
	}
	return nil
}

// versionFlag implements the -V=full half of the vettool protocol: the
// go command caches vet results keyed on the tool's content hash.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel buildID=%02x\n", exe, h.Sum(nil))
	os.Exit(0)
	return nil
}

func main() {
	analyzers := analysis.All()
	if err := framework.Validate(analyzers); err != nil {
		fmt.Fprintln(os.Stderr, "oclint:", err)
		os.Exit(1)
	}

	fs := flag.NewFlagSet("oclint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, `oclint: static analysis for the overcell router.

usage:
	go vet -vettool=$(which oclint) ./...
	oclint [packages]
	oclint help
`)
		fs.PrintDefaults()
	}
	fs.Var(versionFlag{}, "V", "print version and exit")
	printflags := fs.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := fs.Bool("json", false, "emit JSON output")
	github := fs.Bool("github", false, "emit findings as GitHub Actions workflow annotations (standalone mode)")
	fs.Int("c", -1, "display offending line with this many lines of context (ignored)")
	// Legacy vet shims the go command may relay.
	fs.Bool("source", false, "no effect (deprecated)")
	fs.Bool("v", false, "no effect (deprecated)")
	fs.Bool("all", false, "no effect (deprecated)")
	fs.String("tags", "", "no effect (deprecated)")

	enabled := map[string]*triState{}
	for _, a := range analyzers {
		t := new(triState)
		enabled[a.Name] = t
		fs.Var(t, a.Name, "enable only "+a.Name+" (or -"+a.Name+"=false to disable it)")
	}
	fs.Parse(os.Args[1:])

	if *printflags {
		printFlags(fs)
		os.Exit(0)
	}

	analyzers = selectAnalyzers(analyzers, enabled)
	args := fs.Args()

	if len(args) == 1 && args[0] == "help" {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		os.Exit(0)
	}

	// go vet mode: a single JSON config file describing one unit.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		framework.RunUnit(args[0], analyzers, *jsonOut)
		return // unreachable; RunUnit exits
	}

	// Standalone mode: load packages from source via the go command.
	// LoadPackages returns them in dependency order (with module
	// dependencies of narrow patterns included as facts-only packages),
	// so a single shared fact store gives every analyzer the facts of
	// everything a package imports.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := framework.LoadPackages(".", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oclint:", err)
		os.Exit(1)
	}
	facts := framework.NewFactStore()
	exit := 0
	for _, pkg := range pkgs {
		pass := framework.Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		diags, err := framework.RunAnalyzers(pass, analyzers, facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oclint:", err)
			os.Exit(1)
		}
		if pkg.FactsOnly {
			continue // analyzed for facts; not named by the patterns
		}
		for _, d := range diags {
			posn := pkg.Fset.Position(d.Pos)
			if *github {
				// GitHub Actions workflow-command annotations: rendered
				// inline on the PR diff by the lint job.
				fmt.Printf("::error file=%s,line=%d,col=%d,title=oclint/%s::%s\n",
					posn.Filename, posn.Line, posn.Column, d.Category,
					strings.ReplaceAll(d.Message, "\n", " "))
			}
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", posn, d.Category, d.Message)
			exit = 2
		}
	}
	os.Exit(exit)
}

// printFlags answers the go command's -flags query: a JSON list of
// flags it may relay to the tool.
func printFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "oclint:", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
}

// selectAnalyzers applies the -NAME flags: any explicit true runs only
// the true set; otherwise explicit falses are removed.
func selectAnalyzers(all []*framework.Analyzer, enabled map[string]*triState) []*framework.Analyzer {
	anyTrue := false
	for _, t := range enabled {
		if *t == setTrue {
			anyTrue = true
		}
	}
	var out []*framework.Analyzer
	for _, a := range all {
		switch *enabled[a.Name] {
		case setTrue:
			out = append(out, a)
		case setFalse:
		default:
			if !anyTrue {
				out = append(out, a)
			}
		}
	}
	return out
}
