// Command tables regenerates the evaluation tables of Katsadas & Chen
// (DAC 1990) on the synthetic benchmark instances:
//
//	tables -table 1            instance statistics (Table 1)
//	tables -table 2            over-cell vs two-layer channel flow (Table 2)
//	tables -table 3            over-cell vs optimistic 4-layer channel (Table 3)
//	tables -table channelfree  the channel-free variant of section 5
//	tables -table all          everything
package main

import (
	"flag"
	"fmt"
	"os"

	"overcell/internal/flow"
	"overcell/internal/gen"
	"overcell/internal/metrics"
	"overcell/internal/obs"
)

var makers = []struct {
	name string
	mk   func() (*gen.Instance, error)
}{
	{"ami33", gen.Ami33Like},
	{"Xerox", gen.XeroxLike},
	{"ex3", gen.Ex3Like},
}

// runOpts is threaded through every flow invocation so -stats can
// aggregate routing events across all table runs.
var runOpts flow.Options

func main() {
	table := flag.String("table", "all", "which table to print: 1, 2, 3, channelfree, delay, all")
	stats := flag.Bool("stats", false, "print aggregated routing statistics after the tables")
	flag.Parse()
	var collector *obs.Collector
	if *stats {
		collector = obs.NewCollector()
		runOpts.Tracer = collector
	}
	switch *table {
	case "1":
		table1()
	case "2":
		table2()
	case "3":
		table3()
	case "channelfree":
		channelFree()
	case "delay":
		delayTable()
	case "all":
		table1()
		fmt.Println()
		table2()
		fmt.Println()
		table3()
		fmt.Println()
		channelFree()
		fmt.Println()
		delayTable()
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
	if collector != nil {
		fmt.Println()
		fmt.Print(collector.Summary())
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}

func table1() {
	fmt.Println("Table 1: information about the three layout examples")
	fmt.Printf("%-8s %6s %6s %6s %14s %14s\n",
		"Example", "Cells", "Nets", "Pins", "Level A nets", "avg pins/net")
	for _, m := range makers {
		inst, err := m.mk()
		if err != nil {
			die(err)
		}
		cells := len(inst.Layout.Cells())
		nets, pins := 0, 0
		aNets, aPins := 0, 0
		for _, s := range inst.Nets {
			nets++
			pins += len(s.Pins)
			if s.LevelA() {
				aNets++
				aPins += len(s.Pins)
			}
		}
		fmt.Printf("%-8s %6d %6d %6d %14d %14.2f\n",
			m.name, cells, nets, pins, aNets, float64(aPins)/float64(aNets))
	}
}

func runPair(mk func() (*gen.Instance, error),
	base, after func(*gen.Instance, flow.Options) (*flow.Result, error)) (metrics.Comparison, error) {
	ib, err := mk()
	if err != nil {
		return metrics.Comparison{}, err
	}
	rb, err := base(ib, runOpts)
	if err != nil {
		return metrics.Comparison{}, err
	}
	ia, err := mk()
	if err != nil {
		return metrics.Comparison{}, err
	}
	ra, err := after(ia, runOpts)
	if err != nil {
		return metrics.Comparison{}, err
	}
	return metrics.Comparison{Base: rb, New: ra}, nil
}

func table2() {
	fmt.Println("Table 2: percent reductions of the over-cell router over a two-layer channel router")
	var rows []metrics.Comparison
	for _, m := range makers {
		c, err := runPair(m.mk, flow.TwoLayerBaseline, flow.Proposed)
		if err != nil {
			die(err)
		}
		c.Instance = m.name
		rows = append(rows, c)
	}
	fmt.Print(metrics.Table2(rows))
}

func table3() {
	fmt.Println("Table 3: layout area, optimistic 4-layer channel router vs 4-layer over-cell router")
	var rows []metrics.Comparison
	for _, m := range makers {
		c, err := runPair(m.mk, flow.FourLayerChannel, flow.Proposed)
		if err != nil {
			die(err)
		}
		c.Instance = m.name
		rows = append(rows, c)
	}
	fmt.Print(metrics.Table3(rows))
}

func delayTable() {
	fmt.Println("Propagation delay (section 2 motivation): Elmore estimates, two-layer channel vs over-cell flow")
	fmt.Printf("%-8s %16s %16s %12s %12s\n", "Example", "mean (base)", "mean (prop)", "mean red.", "max red.")
	for _, m := range makers {
		c, err := runPair(m.mk, flow.TwoLayerBaseline, flow.Proposed)
		if err != nil {
			die(err)
		}
		fmt.Printf("%-8s %16.0f %16.0f %11.1f%% %11.1f%%\n",
			m.name, c.Base.Delay.Mean, c.New.Delay.Mean,
			metrics.Reduction(int64(c.Base.Delay.Mean), int64(c.New.Delay.Mean)),
			metrics.Reduction(int64(c.Base.Delay.Max), int64(c.New.Delay.Max)))
	}
}

func channelFree() {
	fmt.Println("Channel-free mode (section 5): all nets at level B, channels eliminated")
	fmt.Printf("%-8s %14s %14s %10s\n", "Example", "Over-cell", "Channel-free", "Reduction")
	for _, m := range makers {
		c, err := runPair(m.mk, flow.Proposed, flow.ChannelFree)
		if err != nil {
			die(err)
		}
		fmt.Printf("%-8s %14d %14d %9.1f%%\n",
			m.name, c.Base.Area, c.New.Area, c.AreaReduction())
	}
}
