// Command ocserved runs the router as a long-lived HTTP service: it
// accepts routing jobs, executes them under work budgets with
// cancellation, and exposes the live ops surface — Prometheus
// /metrics, per-run span traces, congestion heatmaps and pprof.
//
//	ocserved -addr :8344
//	ocserved -addr 127.0.0.1:0 -max-runs 4   # ephemeral port, printed
//	ocserved -journal /var/lib/ocroute       # crash-safe run lifecycle
//
//	# submit a job and wait for it:
//	benchgen -name ami33 | curl -s --data-binary @- \
//	    'http://localhost:8344/runs?flow=proposed&wait=1'
//	curl -s localhost:8344/metrics | grep ocroute_nets_routed_total
//	curl -s localhost:8344/runs
//	curl -s localhost:8344/runs/run-1/heatmap.svg -o heat.svg
//
//	# watch a run live: SSE events, congestion series, animated heatmap
//	curl -N localhost:8344/runs/run-1/events
//	curl -s localhost:8344/runs/run-1/congestion?frames=1
//	curl -s localhost:8344/runs/run-1/congestion.svg -o congest.svg
//
// Structured logs (run-correlated, with run_id and attempt fields) go
// to stderr; -log-format json emits one JSON object per line for log
// shippers. Plain operational lines scripts scrape — the listen
// address, the journal recovery summary — stay on stdout.
//
// The listen address is printed once the socket is bound ("listening
// on http://HOST:PORT"), so scripts can use port 0 and scrape the
// actual port from stdout.
//
// With -journal DIR every run lifecycle transition is appended to
// DIR/wal.ndjson; on the next start the journal is replayed — finished
// runs reappear under /runs with their result hashes, and runs that
// were pending or in flight when the process died are requeued and
// re-executed (the router is deterministic, so the recovered results
// are byte-identical). -journal-fsync picks the durability/latency
// trade-off; -retries enables supervised re-execution of internal
// failures.
//
// Shutdown is a two-stage drain: the first SIGINT/SIGTERM stops
// admissions (healthz 503 "draining", POST /runs 503 + Retry-After)
// and gives in-flight runs -drain-timeout to finish; whatever remains
// is checkpoint-canceled to the journal for requeue on the next start.
// A second signal during the drain forces immediate exit, logging the
// run IDs still in flight.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"overcell/internal/robust"
	"overcell/internal/serve"
	"overcell/internal/serve/journal"
	"overcell/internal/version"
)

// newLogger builds the run-correlated structured logger from the
// -log-format/-log-level flags. It writes to stderr: stdout stays
// reserved for the plain operational lines scripts scrape ("listening
// on http://...", the journal recovery summary).
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

func main() {
	addr := flag.String("addr", ":8344", "listen address (host:port; port 0 picks one)")
	maxRuns := flag.Int("max-runs", 2, "maximum concurrently routing jobs")
	maxPending := flag.Int("max-pending", 16, "queued runs beyond which submissions get 503")
	keepRuns := flag.Int("keep-runs", 64, "finished runs retained for /runs")
	workers := flag.Int("workers", 0, "default level B routing workers per run, overridable per job with ?workers= (0 = GOMAXPROCS)")
	journalDir := flag.String("journal", "", "directory for the run-lifecycle journal (empty = no durability)")
	journalSync := flag.String("journal-fsync", "always", "journal fsync policy: always (power-loss durable) or never (process-crash durable, cheaper)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long in-flight runs get to finish after the first SIGTERM before being checkpointed for requeue")
	retries := flag.Int("retries", 1, "attempts per run; failures classified retryable (internal errors, panics) are re-executed up to this many times")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "backoff after the first failed attempt, doubling per retry")
	streamCap := flag.Int("stream-cap", 0, "per-run event ring for /runs/{id}/events SSE subscribers (0 = default, negative disables streaming and congestion telemetry)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json (written to stderr)")
	logLevel := flag.String("log-level", "info", "minimum structured log level: debug, info, warn or error")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("ocserved %s (%s)\n", version.String(), version.Go())
		return
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocserved:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := serve.Config{
		MaxRuns: *maxRuns, MaxPending: *maxPending, KeepRuns: *keepRuns,
		BaseCtx: ctx, Workers: *workers,
		Retry:     robust.Policy{MaxAttempts: *retries, BaseDelay: *retryBase, Cap: 10 * time.Second},
		StreamCap: *streamCap, Version: version.String(), Logger: logger,
	}

	var rep *journal.Replay
	if *journalDir != "" {
		sync, err := journal.ParseSync(*journalSync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ocserved:", err)
			os.Exit(1)
		}
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ocserved: journal dir:", err)
			os.Exit(1)
		}
		path := filepath.Join(*journalDir, "wal.ndjson")
		j, r, err := journal.Open(path, journal.Options{Sync: sync})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ocserved: journal:", err)
			os.Exit(1)
		}
		defer j.Close()
		cfg.Journal = j
		rep = r
		if r.Torn {
			fmt.Printf("journal: torn final record dropped (crash mid-write), %d intact records replayed\n", r.Records)
		}
	}

	s := serve.New(cfg)
	if rep != nil {
		finished, requeued, failed := s.Recover(rep)
		if finished+requeued+failed > 0 {
			fmt.Printf("journal: recovered %d finished, requeued %d, %d unrecoverable\n",
				finished, requeued, failed)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocserved:", err)
		os.Exit(1)
	}
	fmt.Printf("listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("ocserved: %v, draining (timeout %v; signal again to force exit)\n", sig, *drainTimeout)
		s.StartDrain()

		// A second signal during the drain means "now": log what was
		// still in flight and exit without waiting.
		go func() {
			sig := <-sigc
			fmt.Fprintf(os.Stderr, "ocserved: %v during drain, forcing exit; in flight: %s\n",
				sig, strings.Join(s.InFlight(), " "))
			if cfg.Journal != nil {
				cfg.Journal.Close() // flush what we have; in-flight runs requeue on restart
			}
			os.Exit(1)
		}()

		drainCtx, drainCancel := context.WithTimeout(context.Background(), *drainTimeout)
		remaining := s.DrainWait(drainCtx)
		drainCancel()
		if len(remaining) > 0 {
			fmt.Printf("ocserved: drain timeout, checkpointing %d in-flight runs for requeue: %s\n",
				len(remaining), strings.Join(remaining, " "))
			s.Checkpoint()
		}
		cancel() // release anything still scoped to the server lifetime
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer shutCancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "ocserved: shutdown:", err)
			os.Exit(1)
		}
		fmt.Println("ocserved: drained, bye")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ocserved:", err)
			os.Exit(1)
		}
	}
}
