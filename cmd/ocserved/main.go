// Command ocserved runs the router as a long-lived HTTP service: it
// accepts routing jobs, executes them under work budgets with
// cancellation, and exposes the live ops surface — Prometheus
// /metrics, per-run span traces, congestion heatmaps and pprof.
//
//	ocserved -addr :8344
//	ocserved -addr 127.0.0.1:0 -max-runs 4   # ephemeral port, printed
//
//	# submit a job and wait for it:
//	benchgen -name ami33 | curl -s --data-binary @- \
//	    'http://localhost:8344/runs?flow=proposed&wait=1'
//	curl -s localhost:8344/metrics | grep ocroute_nets_routed_total
//	curl -s localhost:8344/runs
//	curl -s localhost:8344/runs/run-1/heatmap.svg -o heat.svg
//
// The listen address is printed once the socket is bound ("listening
// on http://HOST:PORT"), so scripts can use port 0 and scrape the
// actual port from stdout. SIGINT/SIGTERM cancel all active runs and
// shut the server down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"overcell/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address (host:port; port 0 picks one)")
	maxRuns := flag.Int("max-runs", 2, "maximum concurrently routing jobs")
	maxPending := flag.Int("max-pending", 16, "queued runs beyond which submissions get 503")
	keepRuns := flag.Int("keep-runs", 64, "finished runs retained for /runs")
	workers := flag.Int("workers", 0, "default level B routing workers per run, overridable per job with ?workers= (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := serve.New(serve.Config{
		MaxRuns: *maxRuns, MaxPending: *maxPending, KeepRuns: *keepRuns,
		BaseCtx: ctx, Workers: *workers,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocserved:", err)
		os.Exit(1)
	}
	fmt.Printf("listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("ocserved: %v, shutting down\n", sig)
		cancel() // cancel active runs so shutdown is not held up
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer shutCancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "ocserved: shutdown:", err)
			os.Exit(1)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ocserved:", err)
			os.Exit(1)
		}
	}
}
