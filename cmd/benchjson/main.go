// Command benchjson measures the repository's headline workloads and
// writes the results as a machine-readable JSON file, one snapshot of
// the performance trajectory per tag:
//
//	benchjson -tag pr2                 writes BENCH_pr2.json
//	benchjson -tag dev -runs 3         best-of-3 timings
//	benchjson -o /tmp/out.json
//
// Unlike `go test -bench`, the output is a stable, diffable document
// (obs.BenchFile) meant to be committed alongside the change that
// produced it, so regressions show up in review as JSON diffs — and
// as gated deltas via cmd/benchdiff. Snapshots carry the measuring
// host's metadata (GOOS/GOARCH, CPU and GOMAXPROCS counts) so that
// cross-machine comparisons are detected rather than mistaken for
// regressions. The
// workloads mirror the root benchmarks: the Table 2 flow comparison on
// all three instances, the channel-free variant, the maze-vs-TIG
// search comparison, and traced-vs-untraced plus budgeted-vs-untraced
// pairs quantifying the observability and budget-metering overhead.
//
// -deadline and -budget bound each workload run (a safety rail when
// benchmarking hostile or oversized instances); a tripped budget fails
// the workload rather than silently snapshotting a partial route.
// -workers sizes the parallel half of the levelb sequential/parallel
// pair, and -only restricts the run to workloads whose name contains
// the given substring (e.g. -only levelb/ for just that pair).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"overcell/internal/core"
	"overcell/internal/flow"
	"overcell/internal/gen"
	"overcell/internal/geom"
	"overcell/internal/grid"
	"overcell/internal/maze"
	"overcell/internal/metrics"
	"overcell/internal/netlist"
	"overcell/internal/obs"
	"overcell/internal/obs/perf"
	"overcell/internal/robust"
	"overcell/internal/serve"
	"overcell/internal/serve/journal"
	"overcell/internal/tig"
)

// guard holds the -deadline/-budget limits applied to every flow
// workload. Zero means unbounded, matching pre-flag behaviour.
var guard robust.Limits

// workersFlag sizes the parallel entry of the levelb pair.
var workersFlag int

func main() {
	tag := flag.String("tag", "dev", "snapshot tag (becomes BENCH_<tag>.json)")
	out := flag.String("o", "", "output file (default BENCH_<tag>.json)")
	runs := flag.Int("runs", 1, "timing runs per workload; the fastest is kept")
	only := flag.String("only", "", "run only workloads whose name contains this substring")
	flag.DurationVar(&guard.Timeout, "deadline", 0, "wall-clock budget per workload run (0 = none)")
	flag.Int64Var(&guard.NetExpansions, "budget", 0, "search-expansion budget per net (0 = unlimited)")
	flag.IntVar(&workersFlag, "workers", 4, "worker count for the parallel levelb workload")
	flag.Parse()
	if *runs < 1 {
		*runs = 1
	}
	if *out == "" {
		*out = "BENCH_" + *tag + ".json"
	}

	file := obs.BenchFile{
		Schema:      obs.BenchSchemaVersion,
		Tag:         *tag,
		GoVersion:   runtime.Version(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339), //oc:clock-ok report timestamp is bench metadata, not a routing input
		Host: &obs.BenchHost{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		},
	}
	for _, b := range workloads() {
		if *only != "" && !strings.Contains(b.name, *only) {
			continue
		}
		entry, err := measure(b, *runs)
		if err != nil {
			die(fmt.Errorf("%s: %w", b.name, err))
		}
		file.Benchmarks = append(file.Benchmarks, entry)
		fmt.Printf("%-28s %12d ns/op %10d allocs/op\n", entry.Name, entry.NsPerOp, entry.AllocsPerOp)
	}

	f, err := os.Create(*out)
	if err != nil {
		die(err)
	}
	defer f.Close()
	if err := obs.WriteBench(f, &file); err != nil {
		die(err)
	}
	fmt.Println("wrote", *out)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// workload is one measured unit: fn runs the work once and returns
// result metrics (and, for perf-instrumented workloads, the per-phase
// attribution rows) to attach to the entry.
type workload struct {
	name string
	fn   func() (map[string]float64, []obs.BenchPhase, error)
}

// measure times a workload runs times, keeping the fastest run's
// wall time and its allocation delta (runtime.ReadMemStats before and
// after, after a forced GC so prior garbage is not charged to us).
func measure(b workload, runs int) (obs.BenchEntry, error) {
	entry := obs.BenchEntry{Name: b.name, Runs: runs}
	for i := 0; i < runs; i++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now() //oc:clock-ok bench harness measures real wall time by design
		m, phases, err := b.fn()
		elapsed := time.Since(start) //oc:clock-ok bench harness measures real wall time by design
		runtime.ReadMemStats(&after)
		if err != nil {
			return entry, err
		}
		ns := elapsed.Nanoseconds()
		if i == 0 || ns < entry.NsPerOp {
			entry.NsPerOp = ns
			entry.BytesPerOp = after.TotalAlloc - before.TotalAlloc
			entry.AllocsPerOp = after.Mallocs - before.Mallocs
			entry.Metrics = m
			entry.Phases = phases
		}
	}
	return entry, nil
}

func workloads() []workload {
	var ws []workload
	for _, m := range []struct {
		name string
		mk   func() (*gen.Instance, error)
	}{
		{"ami33", gen.Ami33Like},
		{"xerox", gen.XeroxLike},
		{"ex3", gen.Ex3Like},
	} {
		mk := m.mk
		ws = append(ws, workload{"table2/" + m.name, func() (map[string]float64, []obs.BenchPhase, error) {
			base, err := runFlow(mk, flow.TwoLayerBaseline, flow.Options{})
			if err != nil {
				return nil, nil, err
			}
			prop, err := runFlow(mk, flow.Proposed, flow.Options{})
			if err != nil {
				return nil, nil, err
			}
			c := metrics.Comparison{Base: base, New: prop}
			return map[string]float64{
				"area-red-pct": c.AreaReduction(),
				"wire-red-pct": c.WireReduction(),
				"via-red-pct":  c.ViaReduction(),
				"expanded":     float64(prop.LevelB.Expanded),
			}, nil, nil
		}})
	}
	ws = append(ws, workload{"channelfree/ami33", func() (map[string]float64, []obs.BenchPhase, error) {
		base, err := runFlow(gen.Ami33Like, flow.Proposed, flow.Options{})
		if err != nil {
			return nil, nil, err
		}
		cf, err := runFlow(gen.Ami33Like, flow.ChannelFree, flow.Options{})
		if err != nil {
			return nil, nil, err
		}
		c := metrics.Comparison{Base: base, New: cf}
		return map[string]float64{
			"area-red-pct": c.AreaReduction(),
			"expanded":     float64(cf.LevelB.Expanded),
		}, nil, nil
	}})
	// The overhead pair: the same flow with tracing off and with a
	// collector attached. Comparing the two ns/op values in the JSON is
	// the standing regression check on observability cost.
	ws = append(ws, workload{"proposed/ami33/untraced", func() (map[string]float64, []obs.BenchPhase, error) {
		res, err := runFlow(gen.Ami33Like, flow.Proposed, flow.Options{})
		if err != nil {
			return nil, nil, err
		}
		return map[string]float64{"expanded": float64(res.LevelB.Expanded)}, nil, nil
	}})
	// The traced entry doubles as the perf-attributed one: its Phases
	// break the flow down by level-a/level-b/verify.
	ws = append(ws, workload{"proposed/ami33/traced", func() (map[string]float64, []obs.BenchPhase, error) {
		col := obs.NewCollector()
		pc := perf.New(perf.Options{Run: "proposed/ami33/traced"})
		res, err := runFlow(gen.Ami33Like, flow.Proposed, flow.Options{Tracer: col, Perf: pc})
		if err != nil {
			return nil, nil, err
		}
		pc.Finish()
		return map[string]float64{
			"expanded": float64(res.LevelB.Expanded),
			"events":   float64(col.Events()),
		}, pc.Report().BenchPhases(), nil
	}})
	// The budget pair: the same flow metered by an active budget whose
	// limits sit far above the workload's actual work, so every Charge
	// executes but nothing trips. Comparing its ns/op against
	// proposed/ami33/untraced is the standing regression check that
	// budget metering stays under 2% overhead.
	ws = append(ws, workload{"proposed/ami33/budgeted", func() (map[string]float64, []obs.BenchPhase, error) {
		res, err := runFlow(gen.Ami33Like, flow.Proposed, flow.Options{
			Limits: robust.Limits{
				NetExpansions:   1 << 30,
				TotalExpansions: 1 << 40,
				Timeout:         time.Hour,
			},
		})
		if err != nil {
			return nil, nil, err
		}
		return map[string]float64{"expanded": float64(res.LevelB.Expanded)}, nil, nil
	}})
	// The parallelism pair: the identical dense level B instance routed
	// serially and with the speculate/validate/commit driver. The two
	// entries' ns/op ratio is the headline parallel speedup; their
	// result metrics (expanded/wire/failed) must match exactly — the
	// parallel driver is deterministic by construction.
	ws = append(ws, workload{"levelb/nets100/seq", func() (map[string]float64, []obs.BenchPhase, error) {
		return levelB(1)
	}})
	ws = append(ws, workload{fmt.Sprintf("levelb/nets100/par%d", workersFlag), func() (map[string]float64, []obs.BenchPhase, error) {
		return levelB(workersFlag)
	}})
	// The durability pair: the identical burst of accepted-and-waited
	// runs through an in-process ocserved with the lifecycle journal
	// off and on (SyncAlways, the production default). The ns/op delta
	// divided by the "runs" metric is the journal's per-run cost —
	// three fsynced appends (accepted, started, finished) — the number
	// the README's fsync trade-off note cites.
	ws = append(ws, workload{"serve/journal/off", func() (map[string]float64, []obs.BenchPhase, error) {
		return serveRuns("", 0)
	}})
	ws = append(ws, workload{"serve/journal/on", func() (map[string]float64, []obs.BenchPhase, error) {
		dir, err := os.MkdirTemp("", "ocbench-journal")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		return serveRuns(dir, 0)
	}})
	// The streaming pair: the identical burst with run telemetry (event
	// broker + congestion series) fully disabled and at its default. No
	// SSE client is attached, so the delta is the standing regression
	// check on what live telemetry costs every run whether or not
	// anyone is watching.
	ws = append(ws, workload{"serve/stream/off", func() (map[string]float64, []obs.BenchPhase, error) {
		return serveRuns("", -1)
	}})
	ws = append(ws, workload{"serve/stream/on", func() (map[string]float64, []obs.BenchPhase, error) {
		return serveRuns("", 0)
	}})
	ws = append(ws, workload{"search/maze-vs-tig", mazeVsTIG})
	return ws
}

// serveRunsCount is the submission burst each serve/journal entry
// pushes through the server; the per-run journal cost is the pair's
// ns/op delta divided by this.
const serveRunsCount = 24

// serveRuns boots an in-process ocserved (journaled when dir is
// non-empty, event streaming disabled when streamCap < 0), submits
// serveRunsCount waited runs of a tiny instance over real HTTP, and
// verifies every one finishes done.
func serveRuns(dir string, streamCap int) (map[string]float64, []obs.BenchPhase, error) {
	inst, err := gen.Generate(gen.Params{
		Name: "tiny", Seed: 7,
		Rows: 2, Cells: 6,
		CellWMin: 240, CellWMax: 420, CellHMin: 140, CellHMax: 220,
		RowGap: 64, Margin: 48,
		SignalNets: 10, LevelANets: []int{3},
		RailHalfWidth: 6,
	})
	if err != nil {
		return nil, nil, err
	}
	var payload bytes.Buffer
	if err := inst.WriteJSON(&payload); err != nil {
		return nil, nil, err
	}
	cfg := serve.Config{MaxRuns: 1, KeepRuns: serveRunsCount + 1, StreamCap: streamCap}
	if dir != "" {
		j, _, err := journal.Open(filepath.Join(dir, "wal.ndjson"), journal.Options{Sync: journal.SyncAlways})
		if err != nil {
			return nil, nil, err
		}
		defer j.Close()
		cfg.Journal = j
	}
	ts := httptest.NewServer(serve.New(cfg).Handler())
	defer ts.Close()
	for i := 0; i < serveRunsCount; i++ {
		resp, err := http.Post(ts.URL+"/runs?flow=baseline&wait=1", "application/json",
			bytes.NewReader(payload.Bytes()))
		if err != nil {
			return nil, nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"state": "done"`)) {
			return nil, nil, fmt.Errorf("run %d = %d %.120s", i, resp.StatusCode, body)
		}
	}
	return map[string]float64{"runs": serveRunsCount}, nil, nil
}

// levelB routes a dense synthetic instance (96x96 grid, 100
// two-terminal nets, deterministic LCG placement) straight through
// internal/core with the given worker count. A perf collector rides
// along: the parallel entry's Phases carry the speculate/commit
// allocation split that EXPERIMENTS.md's par-vs-seq attribution cites.
func levelB(workers int) (map[string]float64, []obs.BenchPhase, error) {
	g, err := grid.Uniform(96, 96, 10)
	if err != nil {
		return nil, nil, err
	}
	nl := netlist.New()
	seed := uint64(13)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	used := map[geom.Point]bool{}
	pick := func() geom.Point {
		for {
			p := geom.Pt(next(96)*10, next(96)*10)
			if used[p] {
				continue
			}
			used[p] = true
			return p
		}
	}
	for i := 0; i < 100; i++ {
		nl.AddPoints(fmt.Sprintf("n%d", i), netlist.Signal, pick(), pick())
	}
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	if !guard.Zero() {
		cfg.Budget = robust.NewBudget(nil, guard)
	}
	pc := perf.New(perf.Options{Run: fmt.Sprintf("levelb/nets100/w%d", workers)})
	pc.SetWorkers(workers)
	pc.Start()
	cfg.Perf = pc
	cfg.Clock = pc.Clock()
	res, err := core.New(g, cfg).Route(nl.Nets())
	if err != nil {
		return nil, nil, err
	}
	pc.Finish()
	return map[string]float64{
		"expanded": float64(res.Expanded),
		"wire":     float64(res.WireLength),
		"failed":   float64(res.Failed),
	}, pc.Report().BenchPhases(), nil
}

func runFlow(mk func() (*gen.Instance, error),
	f func(*gen.Instance, flow.Options) (*flow.Result, error), opt flow.Options) (*flow.Result, error) {
	if opt.Limits.Zero() {
		opt.Limits = guard
	}
	inst, err := mk()
	if err != nil {
		return nil, err
	}
	return f(inst, opt)
}

// mazeVsTIG mirrors BenchmarkMazeVsTIG: identical two-terminal
// connections on an obstacle field solved by both searches, comparing
// nodes expanded per connection.
func mazeVsTIG() (map[string]float64, []obs.BenchPhase, error) {
	g, err := grid.Uniform(96, 96, 10)
	if err != nil {
		return nil, nil, err
	}
	// A deterministic obstacle field and connection set (LCG so the
	// workload never depends on math/rand defaults).
	seed := uint64(21)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	for k := 0; k < 12; k++ {
		x, y := next(80)+5, next(80)+5
		g.BlockRect(geom.R(x*10, y*10, (x+next(8))*10, (y+next(8))*10), grid.MaskBoth)
	}
	var conns [][2]tig.Point
	for len(conns) < 60 {
		a := tig.Point{Col: next(96), Row: next(96)}
		c := tig.Point{Col: next(96), Row: next(96)}
		if a == c || !g.PointFree(a.Col, a.Row) || !g.PointFree(c.Col, c.Row) {
			continue
		}
		conns = append(conns, [2]tig.Point{a, c})
	}
	full := tig.Config{ColBounds: geom.Iv(0, 95), RowBounds: geom.Iv(0, 95)}
	cb, rb := geom.Iv(0, 95), geom.Iv(0, 95)
	tigNodes, mazeNodes, solved := 0, 0, 0
	for _, c := range conns {
		tr, tok := tig.Search(g, c[0], c[1], full)
		mr, mok := maze.Route(g, c[0], c[1], cb, rb)
		if !tok || !mok {
			continue
		}
		solved++
		tigNodes += tr.Expanded
		mazeNodes += mr.Expanded
	}
	if solved == 0 {
		return nil, nil, fmt.Errorf("no connection solved by both searches")
	}
	return map[string]float64{
		"connections":     float64(solved),
		"tig-nodes/conn":  float64(tigNodes) / float64(solved),
		"maze-nodes/conn": float64(mazeNodes) / float64(solved),
	}, nil, nil
}
