// Package overcell is the public API of this module: a four-layer
// macro-cell routing system reproducing Katsadas & Chen, "A
// Multi-Layer Router Utilizing Over-Cell Areas" (DAC 1990).
//
// The methodology routes a macro-cell layout in two levels. Level A
// routes a selected subset of the nets (typically critical and timing
// nets) in the channels between cell rows on metal1/metal2, using
// classic channel routing. The layout geometry is then frozen, and
// level B routes every remaining net over the entire layout area —
// including the area above the cells — on metal3/metal4, with a
// two-dimensional router built on a Track Intersection Graph search
// that finds all minimum-corner paths and selects among them with a
// weighted cost function. Arbitrary rectangular obstacles (power
// rails, sensitive circuitry) are avoided.
//
// Quick start:
//
//	inst, _ := overcell.Ami33Like()
//	base, _ := overcell.RunTwoLayerBaseline(inst, overcell.Options{})
//	inst, _ = overcell.Ami33Like() // flows re-place the layout; use a fresh copy
//	prop, _ := overcell.RunProposed(inst, overcell.Options{})
//	fmt.Printf("area: %d -> %d\n", base.Area, prop.Area)
//
// The exported names are aliases into the implementation packages, so
// the full documentation lives on the aliased types.
package overcell

import (
	"io"

	"overcell/internal/channel"
	"overcell/internal/core"
	"overcell/internal/delay"
	"overcell/internal/flow"
	"overcell/internal/gen"
	"overcell/internal/geom"
	"overcell/internal/grid"
	"overcell/internal/metrics"
	"overcell/internal/netlist"
	"overcell/internal/render"
	"overcell/internal/tig"
)

// Geometry kernel.
type (
	// Point is an integer layout coordinate.
	Point = geom.Point
	// Rect is an axis-aligned layout rectangle.
	Rect = geom.Rect
)

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return geom.Pt(x, y) }

// R builds a canonical rectangle from two corners.
func R(x0, y0, x1, y1 int) Rect { return geom.R(x0, y0, x1, y1) }

// Netlist model.
type (
	// Netlist is an ordered collection of nets.
	Netlist = netlist.Netlist
	// Net is one electrical net with two or more terminals.
	Net = netlist.Net
	// NetClass tags a net's functional role (signal, critical, ...).
	NetClass = netlist.Class
)

// Net classes.
const (
	Signal   = netlist.Signal
	Critical = netlist.Critical
	Timing   = netlist.Timing
	Power    = netlist.Power
	Ground   = netlist.Ground
)

// NewNetlist returns an empty netlist.
func NewNetlist() *Netlist { return netlist.New() }

// Level B routing surface and router (the paper's core contribution).
type (
	// Grid is the two-layer over-cell routing surface.
	Grid = grid.Grid
	// LayerMask selects grid layers for obstacle insertion.
	LayerMask = grid.Mask
	// Router is the level B router.
	Router = core.Router
	// RouterConfig tunes the level B router.
	RouterConfig = core.Config
	// Weights parameterises the path-selection cost function.
	Weights = core.Weights
	// RouteResult is a level B routing run.
	RouteResult = core.Result
	// NetRoute is one net's realised geometry.
	NetRoute = core.NetRoute
	// GridPoint is a grid point in track index space.
	GridPoint = tig.Point
)

// Obstacle layer masks.
const (
	MaskH    = grid.MaskH
	MaskV    = grid.MaskV
	MaskBoth = grid.MaskBoth
)

// NewGrid builds a routing grid from explicit track coordinates.
func NewGrid(xs, ys []int) (*Grid, error) { return grid.New(xs, ys) }

// UniformGrid builds an nx-by-ny grid with constant pitch.
func UniformGrid(nx, ny, pitch int) (*Grid, error) { return grid.Uniform(nx, ny, pitch) }

// CoverGrid builds a uniform grid covering the rectangle.
func CoverGrid(r Rect, pitch int) (*Grid, error) { return grid.Cover(r, pitch) }

// NewRouter returns a level B router over g.
func NewRouter(g *Grid, cfg RouterConfig) *Router { return core.New(g, cfg) }

// DefaultRouterConfig is the paper-faithful configuration: sparse
// weights (w1=1, w2*=10), longest-distance net ordering.
func DefaultRouterConfig() RouterConfig { return core.DefaultConfig() }

// SparseWeights and DenseWeights are the paper's two weight presets.
func SparseWeights() Weights { return core.SparseWeights() }

// DenseWeights raises the congestion terms for dense net
// distributions.
func DenseWeights() Weights { return core.DenseWeights() }

// Benchmark instances.
type (
	// Instance is a complete benchmark: floorplan, nets, obstacles.
	Instance = gen.Instance
	// InstanceParams drives the parametric generator.
	InstanceParams = gen.Params
)

// Generate builds a deterministic synthetic instance.
func Generate(p InstanceParams) (*Instance, error) { return gen.Generate(p) }

// Ami33Like, XeroxLike and Ex3Like build the three evaluation
// instances, sized after Table 1 of the paper.
func Ami33Like() (*Instance, error) { return gen.Ami33Like() }

// XeroxLike mirrors the Xerox benchmark statistics.
func XeroxLike() (*Instance, error) { return gen.XeroxLike() }

// Ex3Like mirrors the industrial ex3 example statistics.
func Ex3Like() (*Instance, error) { return gen.Ex3Like() }

// Flows.
type (
	// Options tunes a flow run.
	Options = flow.Options
	// FlowResult reports one flow run.
	FlowResult = flow.Result
	// Comparison pairs two flow results over one instance.
	Comparison = metrics.Comparison
)

// RunTwoLayerBaseline routes every net in channels on two layers (the
// paper's baseline).
func RunTwoLayerBaseline(inst *Instance, opt Options) (*FlowResult, error) {
	return flow.TwoLayerBaseline(inst, opt)
}

// RunProposed runs the paper's two-level over-cell methodology.
func RunProposed(inst *Instance, opt Options) (*FlowResult, error) {
	return flow.Proposed(inst, opt)
}

// RunFourLayerChannel runs the optimistic four-layer channel model of
// the paper's Table 3 (channel heights halved).
func RunFourLayerChannel(inst *Instance, opt Options) (*FlowResult, error) {
	return flow.FourLayerChannel(inst, opt)
}

// RunChannelFree routes every net over the cells with channels
// collapsed to minimal separation (paper section 5).
func RunChannelFree(inst *Instance, opt Options) (*FlowResult, error) {
	return flow.ChannelFree(inst, opt)
}

// Reduction returns the percent reduction from base to after.
func Reduction(base, after int64) float64 { return metrics.Reduction(base, after) }

// Rendering helpers.

// RenderASCII draws a level B routing result as ASCII art in track
// index space, downsampled by step (use 1 for full resolution).
func RenderASCII(g *Grid, res *RouteResult, step int) string {
	return render.GridASCII(g, res, step)
}

// WriteSVG draws an instance's placed layout and the over-cell routing
// of a flow result as SVG.
func WriteSVG(w io.Writer, inst *Instance, res *FlowResult) error {
	return render.SVG(w, inst.Layout, res.BGrid, res.LevelB)
}

// NetReport formats the per-net level B results as a text table.
func NetReport(res *RouteResult) string { return render.NetTable(res) }

// Channel routing substrate (level A and the baselines).
type (
	// ChannelProblem is a channel routing instance: pins on two edges.
	ChannelProblem = channel.Problem
	// ChannelSolution is a routed channel with full geometry.
	ChannelSolution = channel.Solution
)

// RouteChannelLeftEdge runs the constrained left-edge algorithm.
func RouteChannelLeftEdge(p *ChannelProblem) (*ChannelSolution, error) { return channel.LeftEdge(p) }

// RouteChannelDogleg runs the dogleg left-edge algorithm.
func RouteChannelDogleg(p *ChannelProblem) (*ChannelSolution, error) { return channel.Dogleg(p) }

// RouteChannelNetMerge runs the Yoshimura-Kuh net-merging algorithm.
func RouteChannelNetMerge(p *ChannelProblem) (*ChannelSolution, error) { return channel.NetMerge(p) }

// RouteChannelGreedy runs the greedy column-scan router (always
// completes on valid problems).
func RouteChannelGreedy(p *ChannelProblem) (*ChannelSolution, error) { return channel.Greedy(p) }

// RenderChannelASCII draws a routed channel as text.
func RenderChannelASCII(p *ChannelProblem, s *ChannelSolution) string {
	return render.ChannelASCII(p, s)
}

// Delay estimation (the paper's propagation-delay motivation).
type (
	// DelayParams carries the electrical technology parameters.
	DelayParams = delay.Params
	// DelayNet describes a routed net for estimation.
	DelayNet = delay.Net
	// DelaySummary aggregates per-net delay estimates.
	DelaySummary = delay.Summary
)

// DefaultDelayParams returns the built-in electrical parameter set.
func DefaultDelayParams() DelayParams { return delay.Default() }

// EstimateDelay returns the first-order Elmore delay of a net.
func EstimateDelay(n DelayNet, p DelayParams) float64 { return delay.Estimate(n, p) }
