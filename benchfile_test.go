package overcell

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"overcell/internal/obs"
)

// TestCommittedBenchFiles guards the perf-trajectory snapshots: every
// BENCH_<tag>.json in the repository root must parse and validate with
// obs.ReadBench, carry the tag its filename claims, and include the
// traced/untraced overhead pair cmd/benchjson always emits.
func TestCommittedBenchFiles(t *testing.T) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no BENCH_*.json snapshots committed; run `make bench-json`")
	}
	for _, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := obs.ReadBench(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		wantTag := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "BENCH_"), ".json")
		if bf.Tag != wantTag {
			t.Errorf("%s: tag = %q, want %q", path, bf.Tag, wantTag)
		}
		names := map[string]bool{}
		for _, b := range bf.Benchmarks {
			if names[b.Name] {
				t.Errorf("%s: duplicate benchmark %q", path, b.Name)
			}
			names[b.Name] = true
		}
		for _, want := range []string{"proposed/ami33/untraced", "proposed/ami33/traced"} {
			if !names[want] {
				t.Errorf("%s: missing overhead workload %q", path, want)
			}
		}
		// Legacy snapshots (pr2, pr3) predate schema versioning; any
		// newer snapshot must be versioned and carry host metadata so
		// benchdiff can tell same-host from cross-host comparisons.
		// Older versioned snapshots stay committed, so the whole range
		// 2..current must keep validating.
		switch {
		case bf.Schema == 0: // legacy, host optional
		case bf.Schema >= 2 && bf.Schema <= obs.BenchSchemaVersion:
			if bf.Host == nil || bf.Host.GOOS == "" || bf.Host.GOARCH == "" ||
				bf.Host.NumCPU <= 0 || bf.Host.GOMAXPROCS <= 0 {
				t.Errorf("%s: schema %d snapshot with incomplete host metadata %+v",
					path, bf.Schema, bf.Host)
			}
		default:
			t.Errorf("%s: unexpected schema %d", path, bf.Schema)
		}
	}
}
