GO ?= go
OCLINT := $(CURDIR)/bin/oclint

.PHONY: all build test race lint bench bench-json clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# lint runs the standard vet suite and then the repo's own analyzers
# (maporder, checkedverify, pointkey, staticdrc) through the vettool
# protocol, exactly as CI does.
lint: $(OCLINT)
	$(GO) vet ./...
	$(GO) vet -vettool=$(OCLINT) ./...

$(OCLINT): FORCE
	$(GO) build -o $(OCLINT) ./cmd/oclint

FORCE:

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json snapshots the perf trajectory as BENCH_<TAG>.json (see
# cmd/benchjson); commit the file alongside the change it baselines.
TAG ?= dev
bench-json:
	$(GO) run ./cmd/benchjson -tag $(TAG) -runs 3

clean:
	rm -rf bin
