GO ?= go
OCLINT := $(CURDIR)/bin/oclint

.PHONY: all build test race lint bench bench-json benchdiff fuzz clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# lint runs the standard vet suite, then the repo's own analyzers
# (maporder, checkedverify, pointkey, staticdrc, shadowbuiltin,
# nondeterm, specwrite, hotalloc) twice: through the vettool protocol
# (facts flow via .vetx files) and standalone over the internal and
# cmd trees (facts flow via go list dependency order) — the standalone
# pass is what CI's lint job runs with -github annotations.
lint: $(OCLINT)
	$(GO) vet ./...
	$(GO) vet -vettool=$(OCLINT) ./...
	$(OCLINT) ./internal/... ./cmd/...

$(OCLINT): FORCE
	$(GO) build -o $(OCLINT) ./cmd/oclint

FORCE:

bench:
	$(GO) test -bench=. -benchmem ./...

# fuzz smoke-runs each fuzz target for a short burst (go's -fuzz flag
# accepts one target per invocation). Crashers land under
# internal/robust/fault/testdata/fuzz/ and replay via plain `go test`.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/robust/fault -run='^$$' -fuzz=FuzzProposed -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/robust/fault -run='^$$' -fuzz=FuzzTIGSearch -fuzztime=$(FUZZTIME)

# bench-json snapshots the perf trajectory as BENCH_<TAG>.json (see
# cmd/benchjson); commit the file alongside the change it baselines.
TAG ?= dev
bench-json:
	$(GO) run ./cmd/benchjson -tag $(TAG) -runs 3

# benchdiff measures a fresh snapshot and diffs it against the newest
# committed BENCH_*.json. The fresh file is written as benchdiff-new.json
# on purpose: the root bench-file test validates every BENCH_*.json, so
# scratch snapshots must not match that glob. BENCHDIFF_FLAGS=-warn
# demotes regressions to a note (CI uses this).
BENCHDIFF_FLAGS ?=
benchdiff:
	$(GO) run ./cmd/benchjson -tag benchdiff-new -o benchdiff-new.json -runs 3
	$(GO) run ./cmd/benchdiff $(BENCHDIFF_FLAGS) -o benchdiff.md benchdiff-new.json
	cat benchdiff.md

clean:
	rm -rf bin benchdiff-new.json benchdiff.md
