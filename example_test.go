package overcell_test

import (
	"fmt"

	"overcell"
)

// The smallest possible level B routing session: one net over an empty
// grid.
func ExampleNewRouter() {
	g, _ := overcell.UniformGrid(8, 8, 10)
	nl := overcell.NewNetlist()
	nl.AddPoints("n", overcell.Signal, overcell.Pt(10, 10), overcell.Pt(60, 50))
	res, _ := overcell.NewRouter(g, overcell.DefaultRouterConfig()).Route(nl.Nets())
	fmt.Println("wire:", res.WireLength, "vias:", res.Vias, "failed:", res.Failed)
	// Output: wire: 90 vias: 1 failed: 0
}

// Obstacles block one or both layers; vertical wires cross a
// metal3-only rail freely.
func ExampleGrid_BlockRect() {
	g, _ := overcell.UniformGrid(8, 8, 10)
	g.BlockRect(overcell.R(0, 30, 70, 40), overcell.MaskH) // metal3 rail
	nl := overcell.NewNetlist()
	nl.AddPoints("cross", overcell.Signal, overcell.Pt(40, 0), overcell.Pt(40, 70))
	res, _ := overcell.NewRouter(g, overcell.DefaultRouterConfig()).Route(nl.Nets())
	fmt.Println("corners:", res.Routes[0].Corners)
	// Output: corners: 0
}

// Channel routing with the greedy column scanner.
func ExampleRouteChannelGreedy() {
	p := &overcell.ChannelProblem{
		Top:    []int{1, 0, 2, 1},
		Bottom: []int{0, 1, 0, 2},
	}
	s, _ := overcell.RouteChannelGreedy(p)
	fmt.Println("tracks:", s.Tracks)
	// Output: tracks: 2
}
